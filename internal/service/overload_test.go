package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/isa"
)

// overloadBackend wraps a Backend and answers Simulate with a 429 while
// saturated — the controllable hot node for shedding tests.
type overloadBackend struct {
	Backend
	saturated bool
	hint      time.Duration
	rejected  int
	mu        sync.Mutex
}

func (o *overloadBackend) Simulate(ctx context.Context, req *SimulateRequest) (*SimulateResponse, error) {
	o.mu.Lock()
	sat := o.saturated
	if sat {
		o.rejected++
	}
	o.mu.Unlock()
	if sat {
		return nil, overloadedf(o.hint, "overloaded (injected)")
	}
	return o.Backend.Simulate(ctx, req)
}

// TestAdmissionRejectsWith429 pins the admission gate's contract: a full
// server refuses a batch with the typed ErrOverloaded carrying the
// Retry-After hint, counts the rejection in its own statusz ledger, and
// leaves the accepted-work counters (and so the reconciliation invariant)
// untouched. Releasing the load admits the identical batch.
func TestAdmissionRejectsWith429(t *testing.T) {
	srv := mustServer(t, Config{
		Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2,
		MaxQueuedCandidates: 8, RetryAfterHint: 1500 * time.Millisecond,
	})
	req := &SimulateRequest{
		Arch: "riscv", Workload: ConvGroupSpec("tiny", 1),
		Candidates: tinyCandidates(t, 1, 3),
	}
	// Saturate the gate the way 8 admitted candidates would.
	if !srv.admit.tryAcquire(DefaultTenant, 8) {
		t.Fatal("gate refused the first acquisition")
	}
	_, err := srv.Simulate(context.Background(), req)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated Simulate returned %v, want ErrOverloaded", err)
	}
	if !IsRetryable(err) {
		t.Fatal("overload must classify retryable")
	}
	var se *Error
	if !errors.As(err, &se) || se.Status != 429 {
		t.Fatalf("overload error lost its 429 classification: %v", err)
	}
	if se.RetryAfter != 1500*time.Millisecond {
		t.Fatalf("RetryAfter %v, want the configured 1.5s hint", se.RetryAfter)
	}
	st, _ := srv.Statusz(context.Background())
	if st.RejectedCandidates != 3 {
		t.Fatalf("rejected_candidates %d, want 3", st.RejectedCandidates)
	}
	if st.Requests != 0 || st.Candidates != 0 {
		t.Fatalf("rejected batch leaked into accepted counters: requests=%d candidates=%d",
			st.Requests, st.Candidates)
	}
	if st.CacheHits+st.CacheMisses+st.CacheCanceled != st.Candidates {
		t.Fatalf("invariant broken under rejection: %d+%d+%d != %d",
			st.CacheHits, st.CacheMisses, st.CacheCanceled, st.Candidates)
	}

	srv.admit.release(DefaultTenant, 8)
	resp, err := srv.Simulate(context.Background(), req)
	if err != nil || len(resp.Results) != 3 {
		t.Fatalf("identical batch after release: %v", err)
	}
	st, _ = srv.Statusz(context.Background())
	if st.Candidates != 3 || st.CacheHits+st.CacheMisses+st.CacheCanceled != st.Candidates {
		t.Fatalf("post-release accounting off: %+v", st)
	}
	if srv.admit.cur.Load() != 0 {
		t.Fatalf("admission gate leaked %d candidates", srv.admit.cur.Load())
	}
}

// TestOversizedBatchAdmittedWhenIdle pins the liveness exception: a batch
// larger than the whole admission bound is served (serially) when nothing
// else is admitted, rather than being re-rejected forever.
func TestOversizedBatchAdmittedWhenIdle(t *testing.T) {
	srv := mustServer(t, Config{
		Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2, MaxQueuedCandidates: 2,
	})
	resp, err := srv.Simulate(context.Background(), &SimulateRequest{
		Arch: "riscv", Workload: ConvGroupSpec("tiny", 1),
		Candidates: tinyCandidates(t, 1, 6),
	})
	if err != nil || len(resp.Results) != 6 {
		t.Fatalf("idle oversized batch must be admitted: %v", err)
	}
}

// TestRetryAfterTravelsTheWire pins both wire forms of the pacing hint: the
// standard Retry-After header rounds the hint up to whole seconds, and the
// retry_after_ms body field preserves it exactly — which is what the typed
// error reconstructed by Client carries.
func TestRetryAfterTravelsTheWire(t *testing.T) {
	srv := mustServer(t, Config{
		Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2,
		MaxQueuedCandidates: 4, RetryAfterHint: 250 * time.Millisecond,
	})
	if !srv.admit.tryAcquire(DefaultTenant, 4) {
		t.Fatal("gate refused the first acquisition")
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	_, err := NewClient(hs.URL).Simulate(context.Background(), &SimulateRequest{
		Arch: "riscv", Workload: ConvGroupSpec("tiny", 1),
		Candidates: tinyCandidates(t, 1, 2),
	})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("client saw %v, want ErrOverloaded", err)
	}
	var se *Error
	if !errors.As(err, &se) || se.RetryAfter != 250*time.Millisecond {
		t.Fatalf("sub-second RetryAfter did not survive the hop: %+v", se)
	}

	// Raw HTTP view: the header is the ceiling in whole seconds.
	resp, err := http.Post(hs.URL+"/v1/simulate", "application/json",
		strings.NewReader(`{"arch":"riscv","workload":{"kind":"conv_group","scale":"tiny","group":1},"candidates":[{"steps":[]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After header %q, want %q (250ms rounded up)", got, "1")
	}

	// Router hop: the hint must survive node → router → client with the same
	// split — exact milliseconds in the body, whole-second ceiling in the
	// router's own Retry-After header (a "0" header would tell clients to
	// hammer a saturated fleet immediately).
	rt, err := NewRouterBackends([]string{"node-a"}, []Backend{NewClient(hs.URL)},
		RouterConfig{ProbeInterval: -1, DisableHandoff: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rs := httptest.NewServer(rt.Handler())
	defer rs.Close()

	_, err = NewClient(rs.URL).Simulate(context.Background(), &SimulateRequest{
		Arch: "riscv", Workload: ConvGroupSpec("tiny", 1),
		Candidates: tinyCandidates(t, 1, 2),
	})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("client saw %v through the router, want ErrOverloaded", err)
	}
	if !errors.As(err, &se) || se.RetryAfter != 250*time.Millisecond {
		t.Fatalf("sub-second RetryAfter did not survive the router hop: %+v", se)
	}
	resp, err = http.Post(rs.URL+"/v1/simulate", "application/json",
		strings.NewReader(`{"arch":"riscv","workload":{"kind":"conv_group","scale":"tiny","group":1},"candidates":[{"steps":[]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Fatalf("router status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("router Retry-After header %q, want %q (250ms rounded up)", got, "1")
	}
}

// TestRouterShedsOverloadedNode: a 429 from one node must re-route the
// sub-batch to ring successors without ejecting the hot node — it stays up
// for the next batch, and the batch completes.
func TestRouterShedsOverloadedNode(t *testing.T) {
	const group, n = 2, 12
	servers := make([]*Server, 3)
	ids := make([]string, 3)
	hot := make([]*overloadBackend, 3)
	backends := make([]Backend, 3)
	for i := range servers {
		servers[i] = mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2})
		ids[i] = "node-" + string(rune('a'+i))
		hot[i] = &overloadBackend{Backend: servers[i], hint: 10 * time.Millisecond}
		backends[i] = hot[i]
	}
	rt, err := NewRouterBackends(ids, backends, RouterConfig{ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	hot[0].mu.Lock()
	hot[0].saturated = true
	hot[0].mu.Unlock()

	req := &SimulateRequest{
		Arch: "riscv", Workload: ConvGroupSpec("tiny", group),
		Candidates: tinyCandidates(t, group, n),
	}
	resp, err := rt.Simulate(context.Background(), req)
	if err != nil {
		t.Fatalf("batch must shed around the hot node: %v", err)
	}
	for i, res := range resp.Results {
		if res.Stats == nil {
			t.Fatalf("candidate %d unserved: %+v", i, res)
		}
	}
	if !rt.nodes[0].up.Load() {
		t.Fatal("overload must not eject the node from rotation")
	}
	if rt.rerouted.Load() == 0 {
		t.Fatal("shedding must count as rerouted")
	}

	// The hot node cools down: the next batch uses it again normally.
	hot[0].mu.Lock()
	hot[0].saturated = false
	hot[0].mu.Unlock()
	if _, err := rt.Simulate(context.Background(), req); err != nil {
		t.Fatalf("post-cooldown batch: %v", err)
	}
}

// TestRouterPropagatesFleetwideOverload: with every live node saturated the
// router must return the 429 itself — retryable, Retry-After intact — rather
// than a misleading "no live nodes".
func TestRouterPropagatesFleetwideOverload(t *testing.T) {
	servers := make([]*Server, 2)
	ids := make([]string, 2)
	backends := make([]Backend, 2)
	for i := range servers {
		servers[i] = mustServer(t, Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2})
		ids[i] = "node-" + string(rune('a'+i))
		backends[i] = &overloadBackend{Backend: servers[i], saturated: true, hint: 750 * time.Millisecond}
	}
	rt, err := NewRouterBackends(ids, backends, RouterConfig{ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	_, err = rt.Simulate(context.Background(), &SimulateRequest{
		Arch: "riscv", Workload: ConvGroupSpec("tiny", 1),
		Candidates: tinyCandidates(t, 1, 4),
	})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("fleet-wide saturation returned %v, want ErrOverloaded", err)
	}
	var se *Error
	if !errors.As(err, &se) || se.RetryAfter != 750*time.Millisecond {
		t.Fatalf("propagated 429 lost its Retry-After: %+v", se)
	}
	for _, n := range rt.nodes {
		if !n.up.Load() {
			t.Fatal("saturation must not mark nodes down")
		}
	}
}

// countingBackend fails every Simulate with a fixed error and counts the
// attempts — the retry-exhaustion fixture.
type countingBackend struct {
	err      *Error
	attempts int
}

func (b *countingBackend) Simulate(context.Context, *SimulateRequest) (*SimulateResponse, error) {
	b.attempts++
	return nil, b.err
}
func (b *countingBackend) Statusz(context.Context) (*Statusz, error) { return &Statusz{}, nil }

// TestRetryExhaustion pins the retry budget: a backend that always fails
// retryably is tried exactly Retries+1 times and the last typed error
// surfaces; a non-retryable failure is never retried. The sleep seam stands
// in for the clock, so the test costs no wall time.
func TestRetryExhaustion(t *testing.T) {
	for _, tc := range []struct {
		name     string
		err      *Error
		retries  int
		attempts int
	}{
		{"503 exhausts the budget", unavailablef("down"), 3, 4},
		{"429 is retryable", overloadedf(time.Second, "full"), 2, 3},
		{"400 is not retried", badRequestf("bad"), 5, 1},
		{"501 is not retried", unservedf("not here"), 5, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			be := &countingBackend{err: tc.err}
			var slept []time.Duration
			r := &ServiceRunner{
				Backend: be, Arch: isa.RISCV, Retries: tc.retries,
				sleep: func(_ context.Context, d time.Duration) error {
					slept = append(slept, d)
					return nil
				},
			}
			_, err := r.simulateWithRetry(context.Background(), &SimulateRequest{})
			if be.attempts != tc.attempts {
				t.Fatalf("%d attempts, want %d", be.attempts, tc.attempts)
			}
			var se *Error
			if !errors.As(err, &se) || se.Status != tc.err.Status {
				t.Fatalf("final error %v, want status %d", err, tc.err.Status)
			}
			if len(slept) != tc.attempts-1 {
				t.Fatalf("slept %d times for %d attempts", len(slept), be.attempts)
			}
			// A server-supplied Retry-After floors every pause.
			if tc.err.RetryAfter > 0 {
				for _, d := range slept {
					if d < tc.err.RetryAfter {
						t.Fatalf("pause %v below the server's Retry-After %v", d, tc.err.RetryAfter)
					}
				}
			}
		})
	}
}

// TestRetryDelayWindows pins the backoff arithmetic: full jitter inside a
// window that doubles per attempt and saturates at the cap, with a
// server-supplied floor winning over a smaller draw.
func TestRetryDelayWindows(t *testing.T) {
	const base, cap = 100 * time.Millisecond, 800 * time.Millisecond
	for attempt := 0; attempt < 8; attempt++ {
		window := cap
		if w := base << uint(attempt); w < cap {
			window = w
		}
		for draw := 0; draw < 50; draw++ {
			d := retryDelay(base, cap, attempt, 0)
			if d <= 0 || d > window {
				t.Fatalf("attempt %d: delay %v outside (0, %v]", attempt, d, window)
			}
		}
	}
	// Jitter must actually vary — lockstep retries are the failure mode.
	seen := map[time.Duration]bool{}
	for draw := 0; draw < 32; draw++ {
		seen[retryDelay(base, cap, 3, 0)] = true
	}
	if len(seen) < 3 {
		t.Fatalf("32 draws produced only %d distinct delays — jitter missing", len(seen))
	}
	if d := retryDelay(base, cap, 0, 5*time.Second); d != 5*time.Second {
		t.Fatalf("floor ignored: %v, want 5s", d)
	}
	// A huge attempt index must not overflow into a negative shift window.
	if d := retryDelay(base, cap, 63, 0); d <= 0 || d > cap {
		t.Fatalf("attempt 63: delay %v outside (0, %v]", d, cap)
	}
}

// TestSaturationConvergesWithJitter is the acceptance saturation scenario:
// a tiny admission bound and more concurrent clients than it can hold. Excess
// batches must be 429-rejected (never queued), every client must converge
// through jittered retries, the gate must never over-admit, and the retry
// pacing must spread (no thundering herd of identical delays).
func TestSaturationConvergesWithJitter(t *testing.T) {
	const (
		clients  = 4
		perBatch = 4
		maxAdm   = 4
	)
	srv := mustServer(t, Config{
		Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2,
		MaxQueuedCandidates: maxAdm, RetryAfterHint: time.Millisecond,
	})
	all := tinyCandidates(t, 1, clients*perBatch)

	var mu sync.Mutex
	var delays []time.Duration
	overAdmitted := false

	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := &ServiceRunner{
				Backend: srv, Arch: isa.RISCV,
				Workload: ConvGroupSpec("tiny", 1),
				Retries:  100, RetryBackoff: 3 * time.Millisecond, RetryBackoffMax: 24 * time.Millisecond,
				sleep: func(ctx context.Context, d time.Duration) error {
					mu.Lock()
					delays = append(delays, d)
					if srv.admit.cur.Load() > maxAdm {
						overAdmitted = true
					}
					mu.Unlock()
					select {
					case <-time.After(d):
						return nil
					case <-ctx.Done():
						return ctx.Err()
					}
				},
			}
			resp, err := r.simulateWithRetry(context.Background(), &SimulateRequest{
				Arch: "riscv", Workload: ConvGroupSpec("tiny", 1),
				Candidates: all[c*perBatch : (c+1)*perBatch],
			})
			if err == nil && len(resp.Results) != perBatch {
				err = errors.New("short response")
			}
			errs[c] = err
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d never converged: %v", c, err)
		}
	}
	if overAdmitted {
		t.Fatal("admission gate exceeded its bound under concurrency")
	}
	st, _ := srv.Statusz(context.Background())
	if st.RejectedCandidates == 0 {
		t.Fatal("saturation run produced no 429s — the gate never filled")
	}
	if st.Candidates != clients*perBatch {
		t.Fatalf("accepted %d candidates, want %d", st.Candidates, clients*perBatch)
	}
	if st.CacheHits+st.CacheMisses+st.CacheCanceled != st.Candidates {
		t.Fatalf("invariant broken after saturation: %+v", st)
	}
	distinct := map[time.Duration]bool{}
	mu.Lock()
	for _, d := range delays {
		distinct[d] = true
	}
	mu.Unlock()
	if len(delays) == 0 {
		t.Fatal("no retries recorded despite rejections")
	}
	if len(distinct) < 3 && len(delays) >= 3 {
		t.Fatalf("%d retries share %d distinct delays — thundering herd", len(delays), len(distinct))
	}
}
