package service

import (
	"encoding/hex"
	"fmt"

	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/sim"
)

// MarshalText renders a Key as lowercase hex — the wire form used by
// /v1/keys, /v1/fetch and /v1/ingest (encoding/json picks this up, so a
// Key field serializes as a 64-char hex string, not a 32-element array).
func (k Key) MarshalText() ([]byte, error) {
	dst := make([]byte, hex.EncodedLen(len(k)))
	hex.Encode(dst, k[:])
	return dst, nil
}

// UnmarshalText parses the hex wire form.
func (k *Key) UnmarshalText(b []byte) error {
	if hex.DecodedLen(len(b)) != len(k) {
		return fmt.Errorf("service: key %q: want %d hex chars", b, hex.EncodedLen(len(k)))
	}
	_, err := hex.Decode(k[:], b)
	return err
}

// Entry is one stored cache record on the replication surface: the content
// address and the result it addresses. It is what /v1/fetch returns and
// /v1/ingest accepts.
type Entry struct {
	Key    Key    `json:"key"`
	Result Result `json:"result"`
}

// KeysResponse is the GET /v1/keys body.
type KeysResponse struct {
	Keys []Key `json:"keys"`
}

// FetchRequest is the POST /v1/fetch body.
type FetchRequest struct {
	Keys []Key `json:"keys"`
}

// FetchResponse carries the found entries (requested keys the node no
// longer holds are dropped, not errored — the key listing may be stale).
type FetchResponse struct {
	Entries []Entry `json:"entries"`
}

// IngestRequest is the POST /v1/ingest body.
type IngestRequest struct {
	Entries []Entry `json:"entries"`
}

// IngestResponse reports how many entries were new to the node.
type IngestResponse struct {
	Ingested int `json:"ingested"`
}

// SimulateRequest is the POST /v1/simulate body: one batch of candidate
// schedules of a single (architecture, workload) pair — exactly the shape a
// tuner's measurement batch has, so one auto-scheduler batch maps to one
// request.
type SimulateRequest struct {
	// Arch is the target architecture ("x86"|"arm"|"riscv").
	Arch string `json:"arch"`
	// Workload identifies the kernel instance the steps apply to.
	Workload WorkloadSpec `json:"workload"`
	// Candidates are the schedules to simulate.
	Candidates []Candidate `json:"candidates"`
}

// Candidate is one schedule, identified by its replayable transform steps —
// the same representation ansor records and schedule.Replay consumes, so a
// step log measured remotely stays replayable locally (and vice versa).
type Candidate struct {
	Steps []schedule.Step `json:"steps"`
}

// SimulateResponse carries per-candidate results, index-aligned with the
// request's candidates.
type SimulateResponse struct {
	Results []Result `json:"results"`
}

// Result is the outcome of one candidate: simulator statistics on success
// (bit-identical to an in-process sim.Run of the same candidate — the stats
// are deterministic, only SimWallSeconds reflects when the work actually
// ran), or a deterministic build/simulation error. CacheHit marks results
// served by the content-addressed cache; their simulation cost was zero.
type Result struct {
	Stats    *sim.Stats `json:"stats,omitempty"`
	CacheHit bool       `json:"cache_hit,omitempty"`
	Err      string     `json:"err,omitempty"`
}

// Statusz is the GET /v1/statusz body: the server-side counters operators
// (and the break-even analysis) watch — how much work the cache absorbed and
// how loaded each shard is.
type Statusz struct {
	UptimeSec float64 `json:"uptime_sec"`
	// Draining reports that Shutdown has started: the node still answers
	// statusz but admits no new batches. Routers read it as a planned
	// down→up cycle and rotate the node out ahead of its restart.
	Draining bool `json:"draining,omitempty"`
	// Requests counts simulate batches, Candidates individual candidates.
	Requests   uint64 `json:"requests"`
	Candidates uint64 `json:"candidates"`
	// RejectedCandidates counts candidates refused by the admission gate
	// (429). Rejected work was never accepted, so — like HandoffKeys — it is
	// a parallel ledger outside the hits+misses+canceled == candidates
	// reconciliation. On a router, the sum over reachable nodes.
	RejectedCandidates uint64 `json:"rejected_candidates"`
	// CacheHits/CacheMisses partition successfully served candidates;
	// CacheCanceled counts candidates whose batch was canceled before the
	// cache could serve them (so hits+misses+canceled reconciles with the
	// candidates accepted); Entries is the current in-memory cache size.
	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	CacheCanceled uint64 `json:"cache_canceled"`
	CacheEntries  int    `json:"cache_entries"`
	// CacheDiskHits is the subset of CacheHits served from the durable
	// store rather than RAM (first touch of a key after a restart or after
	// RAM eviction). It is a breakdown, not an extra term: the
	// hits+misses+canceled == candidates reconciliation is unchanged.
	CacheDiskHits uint64 `json:"cache_disk_hits"`
	// CacheDiskEntries is the durable store's key count (0 without a
	// -cache-dir); it can exceed CacheEntries, whose RAM map is bounded.
	CacheDiskEntries int `json:"cache_disk_entries"`
	// CacheResident is the ARC resident count (|T1|+|T2| — the results
	// actually held in RAM). It equals CacheEntries; the explicit name
	// exists so operators watching the memory bound don't have to know the
	// legacy field's semantics. On a router, the sum over reachable nodes.
	CacheResident int `json:"cache_resident"`
	// CacheEvictions counts resident results demoted to ghosts (or dropped)
	// by the ARC bound. An eviction serves no candidate, so — like
	// HandoffKeys — it is a parallel ledger outside the
	// hits+misses+canceled == candidates reconciliation.
	CacheEvictions uint64 `json:"cache_evictions"`
	// HandoffKeys: on a leaf server, results installed via /v1/ingest
	// (warm-handoff replay into this node); on a router, results it
	// replayed into rejoining nodes. Handoff moves cache contents without
	// serving candidates, so it never enters the hit/miss reconciliation.
	HandoffKeys uint64 `json:"handoff_keys"`
	// Shards reports per-architecture worker pools (leaf servers only).
	Shards []ShardStatus `json:"shards"`
	// Tenants partitions the candidate ledgers by tenant identity
	// (X-Simtune-Tenant; unidentified traffic lands in "default"), sorted
	// by tenant name. Per tenant, hits+misses+canceled == candidates
	// reconciles exactly like the fleet-wide invariant; rejected stays a
	// parallel ledger. On a router, per-node rows merged by tenant name.
	// Empty until the first batch arrives.
	Tenants []TenantStatus `json:"tenants,omitempty"`
	// Nodes reports the backing servers when this statusz comes from a
	// routing tier; the counters above are then sums over reachable nodes.
	Nodes []NodeStatus `json:"nodes,omitempty"`
	// Rerouted counts sub-batches a router re-sent to a ring successor
	// after their owner failed (routing tier only).
	Rerouted uint64 `json:"rerouted,omitempty"`
	// Stages summarizes the telemetry histograms (one row per metric series:
	// per-stage, per-arch, per-outcome latency quantiles). Empty when the
	// tier runs with telemetry disabled. The full mergeable histograms are on
	// /v1/metricsz and the Prometheus rendering on /v1/metrics; statusz
	// carries only the human-readable quantile summary.
	Stages []StageLatency `json:"stages,omitempty"`
	// StoreLiveBytes/StoreTotalBytes report the durable store's segment
	// footprint (live = still-referenced record bytes, total = bytes on
	// disk including garbage awaiting compaction). Zero without -cache-dir.
	StoreLiveBytes  int64 `json:"store_live_bytes,omitempty"`
	StoreTotalBytes int64 `json:"store_total_bytes,omitempty"`
	// StoreCompactions counts completed background segment compactions
	// (the dead-bytes-threshold rewrites that keep TotalBytes near
	// LiveBytes). Zero without -cache-dir.
	StoreCompactions uint64 `json:"store_compactions,omitempty"`
	// ReplicaKeys: on a router, entries it write-through-replicated or
	// anti-entropy-repaired onto ring replicas. Replication moves cache
	// contents without serving candidates, so like HandoffKeys it stays
	// outside the hit/miss reconciliation. Leaf servers report 0 — their
	// side of the traffic lands in HandoffKeys (the /v1/ingest ledger).
	ReplicaKeys uint64 `json:"replica_keys,omitempty"`
	// AntiEntropyRounds counts completed anti-entropy rounds on this router
	// (a round diffs /v1/keys between replicas and repairs the gaps).
	AntiEntropyRounds uint64 `json:"antientropy_rounds,omitempty"`
}

// StageLatency is one telemetry histogram series summarized as quantiles —
// the statusz-friendly projection of the mergeable histogram that backs it.
// Quantiles are exact to within a factor of two (power-of-two buckets, max
// tracked exactly); Count is the number of observations.
type StageLatency struct {
	// Metric is the Prometheus family name (e.g. simtune_stage_duration_seconds).
	Metric string `json:"metric"`
	// Labels is the rendered label set (e.g. `stage="simulate",arch="x86"`).
	Labels string  `json:"labels,omitempty"`
	Count  uint64  `json:"count"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
	MeanMS float64 `json:"mean_ms"`
}

// TracesResponse is the GET /v1/traces body: the tier's retained batch
// traces, newest first. Total counts every trace ever recorded, so a reader
// can tell how many scrolled out of the bounded ring.
type TracesResponse struct {
	Total  uint64      `json:"total"`
	Traces []obs.Trace `json:"traces"`
}

// HitRate returns the cache hit fraction over everything served so far.
func (s *Statusz) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// NodeStatus is one backing server as seen from a router: its ring identity,
// liveness, and the last fault that took it out of rotation.
type NodeStatus struct {
	ID string `json:"id"`
	Up bool   `json:"up"`
	// Candidates counts candidates this router routed to the node (its own
	// statusz may count more — other clients and routers reach it too).
	Candidates uint64 `json:"candidates"`
	// Draining mirrors the node's own statusz draining flag at the last
	// successful poll.
	Draining bool `json:"draining,omitempty"`
	// LastErr is the most recent probe/simulate fault ("" when healthy).
	LastErr string `json:"last_err,omitempty"`
}

// ShardStatus is one architecture shard's load.
type ShardStatus struct {
	Arch    string `json:"arch"`
	Workers int    `json:"workers"`
	// Queued candidates are waiting for a worker slot; Running hold one.
	Queued  int64 `json:"queued"`
	Running int64 `json:"running"`
	// Simulated counts completed cold-path simulations.
	Simulated uint64 `json:"simulated"`
}
