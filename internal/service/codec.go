package service

import (
	"repro/internal/schedule"
	"repro/internal/sim"
)

// SimulateRequest is the POST /v1/simulate body: one batch of candidate
// schedules of a single (architecture, workload) pair — exactly the shape a
// tuner's measurement batch has, so one auto-scheduler batch maps to one
// request.
type SimulateRequest struct {
	// Arch is the target architecture ("x86"|"arm"|"riscv").
	Arch string `json:"arch"`
	// Workload identifies the kernel instance the steps apply to.
	Workload WorkloadSpec `json:"workload"`
	// Candidates are the schedules to simulate.
	Candidates []Candidate `json:"candidates"`
}

// Candidate is one schedule, identified by its replayable transform steps —
// the same representation ansor records and schedule.Replay consumes, so a
// step log measured remotely stays replayable locally (and vice versa).
type Candidate struct {
	Steps []schedule.Step `json:"steps"`
}

// SimulateResponse carries per-candidate results, index-aligned with the
// request's candidates.
type SimulateResponse struct {
	Results []Result `json:"results"`
}

// Result is the outcome of one candidate: simulator statistics on success
// (bit-identical to an in-process sim.Run of the same candidate — the stats
// are deterministic, only SimWallSeconds reflects when the work actually
// ran), or a deterministic build/simulation error. CacheHit marks results
// served by the content-addressed cache; their simulation cost was zero.
type Result struct {
	Stats    *sim.Stats `json:"stats,omitempty"`
	CacheHit bool       `json:"cache_hit,omitempty"`
	Err      string     `json:"err,omitempty"`
}

// Statusz is the GET /v1/statusz body: the server-side counters operators
// (and the break-even analysis) watch — how much work the cache absorbed and
// how loaded each shard is.
type Statusz struct {
	UptimeSec float64 `json:"uptime_sec"`
	// Requests counts simulate batches, Candidates individual candidates.
	Requests   uint64 `json:"requests"`
	Candidates uint64 `json:"candidates"`
	// CacheHits/CacheMisses partition successfully served candidates;
	// CacheCanceled counts candidates whose batch was canceled before the
	// cache could serve them (so hits+misses+canceled reconciles with the
	// candidates accepted); Entries is the current cache size.
	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	CacheCanceled uint64 `json:"cache_canceled"`
	CacheEntries  int    `json:"cache_entries"`
	// Shards reports per-architecture worker pools (leaf servers only).
	Shards []ShardStatus `json:"shards"`
	// Nodes reports the backing servers when this statusz comes from a
	// routing tier; the counters above are then sums over reachable nodes.
	Nodes []NodeStatus `json:"nodes,omitempty"`
	// Rerouted counts sub-batches a router re-sent to a ring successor
	// after their owner failed (routing tier only).
	Rerouted uint64 `json:"rerouted,omitempty"`
}

// HitRate returns the cache hit fraction over everything served so far.
func (s *Statusz) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// NodeStatus is one backing server as seen from a router: its ring identity,
// liveness, and the last fault that took it out of rotation.
type NodeStatus struct {
	ID string `json:"id"`
	Up bool   `json:"up"`
	// Candidates counts candidates this router routed to the node (its own
	// statusz may count more — other clients and routers reach it too).
	Candidates uint64 `json:"candidates"`
	// LastErr is the most recent probe/simulate fault ("" when healthy).
	LastErr string `json:"last_err,omitempty"`
}

// ShardStatus is one architecture shard's load.
type ShardStatus struct {
	Arch    string `json:"arch"`
	Workers int    `json:"workers"`
	// Queued candidates are waiting for a worker slot; Running hold one.
	Queued  int64 `json:"queued"`
	Running int64 `json:"running"`
	// Simulated counts completed cold-path simulations.
	Simulated uint64 `json:"simulated"`
}
