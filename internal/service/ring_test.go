package service

import (
	"fmt"
	"testing"

	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/te"
)

// ringTestKeys derives a spread of real cache keys (distinct step logs of
// one workload) — the key population a router actually shards.
func ringTestKeys(t testing.TB, n int) []Key {
	t.Helper()
	cands := tinyCandidates(t, 1, n)
	keys := make([]Key, n)
	for i, c := range cands {
		keys[i] = CacheKey(isa.RISCV, hw.Lookup(isa.RISCV).Caches, ConvGroupSpec(te.ScaleTiny, 1), c.Steps)
	}
	return keys
}

// TestRingOwnershipStableAndBalanced checks the two properties routing
// correctness rests on: the owner of a key is a pure function of (nodes,
// key) — identical across ring instances, i.e. across router restarts — and
// every node owns a non-trivial share of a realistic key population.
func TestRingOwnershipStableAndBalanced(t *testing.T) {
	nodes := []string{"http://sim-0:8070", "http://sim-1:8070", "http://sim-2:8070"}
	r1 := newRing(nodes, 0)
	r2 := newRing(nodes, 0)
	keys := ringTestKeys(t, 120)
	perNode := make([]int, len(nodes))
	for _, k := range keys {
		if r1.owner(k) != r2.owner(k) {
			t.Fatalf("ring placement not deterministic for key %x", k[:8])
		}
		perNode[r1.owner(k)]++
	}
	for n, c := range perNode {
		// With 128 virtual points per node a 3-way split stays far from
		// degenerate; 10% of fair share is a loose floor that only trips on
		// real imbalance bugs (e.g. all points hashing identically).
		if c < len(keys)/len(nodes)/10 {
			t.Fatalf("node %d owns %d of %d keys — ring is degenerate (%v)", n, c, len(keys), perNode)
		}
	}
}

// TestRingSuccessorsCoverAllNodes checks the failover walk: successors must
// start at the owner and enumerate every node exactly once.
func TestRingSuccessorsCoverAllNodes(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	r := newRing(nodes, 16)
	for _, k := range ringTestKeys(t, 20) {
		succ := r.successors(k)
		if len(succ) != len(nodes) {
			t.Fatalf("successors(%x) = %v, want all %d nodes", k[:8], succ, len(nodes))
		}
		if succ[0] != r.owner(k) {
			t.Fatalf("successors(%x)[0] = %d, owner = %d", k[:8], succ[0], r.owner(k))
		}
		seen := make(map[int]bool)
		for _, n := range succ {
			if seen[n] {
				t.Fatalf("successors(%x) repeats node %d: %v", k[:8], n, succ)
			}
			seen[n] = true
		}
	}
}

// TestRingConsistency checks the "consistent" in consistent hashing: growing
// the fleet from 3 to 4 nodes may only move keys onto the new node — a key
// whose owner survives the change must keep it, or scale-out would invalidate
// every node's warm cache instead of carving out one new shard.
func TestRingConsistency(t *testing.T) {
	three := []string{"n0", "n1", "n2"}
	four := append(append([]string{}, three...), "n3")
	r3, r4 := newRing(three, 0), newRing(four, 0)
	moved := 0
	keys := ringTestKeys(t, 200)
	for _, k := range keys {
		before, after := r3.owner(k), r4.owner(k)
		if after != before && after != 3 {
			t.Fatalf("key %x moved %d -> %d; only moves onto the new node are consistent",
				k[:8], before, after)
		}
		if after == 3 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved to the new node — it owns nothing")
	}
	if moved > len(keys)/2 {
		t.Fatalf("%d of %d keys moved for one added node — far beyond the ~1/4 a consistent ring moves",
			moved, len(keys))
	}
}

// TestRingSingleNode degenerates cleanly: one node owns everything.
func TestRingSingleNode(t *testing.T) {
	r := newRing([]string{"solo"}, 0)
	for _, k := range ringTestKeys(t, 10) {
		if r.owner(k) != 0 {
			t.Fatal("single-node ring must own every key")
		}
		if s := r.successors(k); len(s) != 1 || s[0] != 0 {
			t.Fatalf("successors = %v", s)
		}
	}
}

// TestRingManyNodesAllOwn checks no node is orphaned at a fleet size beyond
// the test topologies (hash-placement accidents would orphan rarely, not
// reproducibly).
func TestRingManyNodesAllOwn(t *testing.T) {
	var nodes []string
	for i := 0; i < 16; i++ {
		nodes = append(nodes, fmt.Sprintf("http://sim-%d:8070", i))
	}
	r := newRing(nodes, 0)
	owned := make([]int, len(nodes))
	for _, k := range ringTestKeys(t, 640) {
		owned[r.owner(k)]++
	}
	for n, c := range owned {
		if c == 0 {
			t.Fatalf("node %d owns no keys: %v", n, owned)
		}
	}
}
