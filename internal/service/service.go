// Package service turns the in-process simulator library into
// simulation-as-a-service: a long-running batch server that accepts
// candidate schedules over an HTTP/JSON API, compiles them with
// runner.LocalBuilder, fans them out over sharded per-architecture worker
// pools built on the pooled sim.Acquire machines, and fronts everything with
// a content-addressed result cache — so identical candidates re-proposed
// across tuning runs and across clients cost a map lookup instead of a
// simulation.
//
// The paper's Contribution I replaces target boards with simulator
// instances behind TVM's builder/runner interface (§III-A, Listing 3);
// this package is the next scaling step of that idea: many concurrent
// tuning clients share one fleet of simulator workers and one result
// cache. Simulations are deterministic functions of
// (architecture, workload, schedule steps), which makes results perfectly
// content-addressable: the cache key is a sha256 over the architecture,
// its Table I cache geometry, the workload signature, and the canonical
// step encoding (schedule.Canonical).
//
// API surface:
//
//	POST /v1/simulate  — batched candidates in, per-candidate stats out
//	GET  /v1/statusz   — queue, cache and worker metrics
//
// Three ways to consume it:
//
//   - Local(): an in-process *Server used directly as a Backend
//     (no sockets) — tests, examples, single-machine tuning.
//   - NewClient(baseURL): the HTTP client for a remote `simtune serve`.
//   - ServiceRunner: a runner.Runner adapter over either, so
//     core.ExecutionPhase and simtune.TuneGroup transparently tune
//     against the service instead of in-process simulators.
package service

import (
	"context"
	"fmt"

	"repro/internal/isa"
	"repro/internal/runner"
	"repro/internal/te"
)

// Backend executes simulation batches. *Server implements it in-process;
// *Client implements it over HTTP. ServiceRunner and all higher layers only
// see this interface, which is what makes the in-process and remote
// backends interchangeable.
type Backend interface {
	// Simulate executes (or serves from cache) every candidate of the
	// request. A non-nil error means the batch as a whole failed
	// (transport, unknown arch/workload, cancellation); per-candidate
	// failures travel inside Result.Err.
	Simulate(ctx context.Context, req *SimulateRequest) (*SimulateResponse, error)
	// Statusz reports server metrics.
	Statusz(ctx context.Context) (*Statusz, error)
}

// Config sizes a Server.
type Config struct {
	// Archs lists the served architectures (default: all three targets).
	// Each arch gets its own worker shard so a flood of RISC-V batches
	// cannot starve x86 clients.
	Archs []isa.Arch
	// WorkersPerArch is the simulator parallelism per shard (default 4 —
	// the paper's n_parallel default).
	WorkersPerArch int
	// CacheCapacity bounds the result cache entry count (default 1<<18).
	CacheCapacity int
}

func (c *Config) defaults() {
	if len(c.Archs) == 0 {
		c.Archs = isa.Archs()
	}
	if c.WorkersPerArch <= 0 {
		c.WorkersPerArch = 4
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 1 << 18
	}
}

// WorkloadSpec is the wire-level workload signature: enough for the server
// to reconstruct the workload from scratch (closures cannot travel over
// JSON) and stable enough to hash into cache keys.
type WorkloadSpec struct {
	// Kind selects the kernel type: "conv_group" (default) or "matmul".
	Kind string `json:"kind"`
	// Scale and Group identify a Table II conv group (conv_group kind).
	Scale string `json:"scale,omitempty"`
	Group int    `json:"group,omitempty"`
	// Dims are the matmul [n, l, m] extents (matmul kind).
	Dims []int `json:"dims,omitempty"`
}

// ConvGroupSpec is the signature of a Table II Conv2D+Bias+ReLU group.
func ConvGroupSpec(scale te.Scale, group int) WorkloadSpec {
	return WorkloadSpec{Kind: "conv_group", Scale: string(scale), Group: group}
}

// MatMulSpec is the signature of an n×l · l×m matmul workload.
func MatMulSpec(n, l, m int) WorkloadSpec {
	return WorkloadSpec{Kind: "matmul", Dims: []int{n, l, m}}
}

// Factory resolves the spec into a workload factory, validating it fully so
// a malformed request fails the batch up front instead of panicking a
// worker.
func (w WorkloadSpec) Factory() (runner.WorkloadFactory, error) {
	switch w.Kind {
	case "", "conv_group":
		scale, err := te.ParseScale(w.Scale)
		if err != nil {
			return nil, fmt.Errorf("service: workload: %w", err)
		}
		if w.Group < 0 || w.Group >= te.NumConvGroups {
			return nil, fmt.Errorf("service: workload: group %d out of range [0,%d)",
				w.Group, te.NumConvGroups)
		}
		group := w.Group
		return func() *te.Workload { return te.ConvGroup(scale, group) }, nil
	case "matmul":
		if len(w.Dims) != 3 {
			return nil, fmt.Errorf("service: workload: matmul wants 3 dims, got %d", len(w.Dims))
		}
		n, l, m := w.Dims[0], w.Dims[1], w.Dims[2]
		if n <= 0 || l <= 0 || m <= 0 {
			return nil, fmt.Errorf("service: workload: matmul dims must be positive, got %v", w.Dims)
		}
		return func() *te.Workload { return te.MatMul(n, l, m) }, nil
	}
	return nil, fmt.Errorf("service: workload: unknown kind %q (want conv_group|matmul)", w.Kind)
}

// signature renders the canonical identity string hashed into cache keys.
// It must stay injective over valid specs and stable across releases.
func (w WorkloadSpec) signature() string {
	switch w.Kind {
	case "", "conv_group":
		return fmt.Sprintf("conv_group/%s/%d", w.Scale, w.Group)
	case "matmul":
		return fmt.Sprintf("matmul/%v", w.Dims)
	}
	return fmt.Sprintf("%s/%s/%d/%v", w.Kind, w.Scale, w.Group, w.Dims)
}
