// Package service turns the in-process simulator library into
// simulation-as-a-service: a long-running batch server that accepts
// candidate schedules over an HTTP/JSON API, compiles them with
// runner.LocalBuilder, fans them out over sharded per-architecture worker
// pools built on the pooled sim.Acquire machines, and fronts everything with
// a content-addressed result cache — so identical candidates re-proposed
// across tuning runs and across clients cost a map lookup instead of a
// simulation.
//
// The paper's Contribution I replaces target boards with simulator
// instances behind TVM's builder/runner interface (§III-A, Listing 3);
// this package is the next scaling step of that idea: many concurrent
// tuning clients share one fleet of simulator workers and one result
// cache. Simulations are deterministic functions of
// (architecture, workload, schedule steps), which makes results perfectly
// content-addressable: the cache key is a sha256 over the architecture,
// its Table I cache geometry, the workload signature, and the canonical
// step encoding (schedule.Canonical).
//
// # Wire protocol
//
// Every tier — leaf server, consistent-hash router — speaks the same
// HTTP/JSON surface, which is what lets clients point at either without
// knowing the topology:
//
//	POST /v1/simulate  — batched candidates in, per-candidate stats out
//	GET  /v1/statusz   — queue, cache and worker metrics
//	GET  /v1/metrics   — Prometheus text exposition: per-stage latency
//	                     histograms, counters, gauges; a router serves the
//	                     exact bucket-merge across its reachable nodes
//	GET  /v1/metricsz  — the same telemetry as a mergeable JSON snapshot
//	                     (what routers merge; see obs.MetricsSnapshot)
//	GET  /v1/traces    — recent batch traces, newest first (bounded ring);
//	                     batches carry an X-Simtune-Trace ID end to end
//	GET  /v1/keys      — cache-key inventory (optionally ?range=lo-hi over
//	                     ring positions); leaf servers only
//	POST /v1/fetch     — bulk-read stored results by key; leaf servers only
//	POST /v1/ingest    — install replayed results (warm handoff); leaf only
//
// The keys/fetch/ingest triple is the replication side channel the router's
// warm handoff uses when a node rejoins the ring: the results a rejoining
// node owns are replayed into it from the ring successors that covered its
// range while it was down, so rejoin never re-simulates the corpus.
//
// # Durability
//
// With Config.CacheDir set, the result cache gains a disk-backed
// write-behind layer (an append-only segment log, see Store): a restarted
// node rebuilds its key index by scanning the segments and serves its
// previously computed corpus as cache hits — statusz splits those out as
// cache_disk_hits.
//
// # Error taxonomy
//
// Errors carry an HTTP-style classification end to end (see Error):
//
//	4xx — the request itself is defective (unknown arch, malformed
//	      workload); retrying anywhere fails identically.
//	501 — this node's operator config does not serve the arch; stable,
//	      so routers route around the healthy node without ejecting it.
//	5xx — this node could not do the work right now (canceled batch,
//	      fault); retryable, and routers fail the sub-batch over to ring
//	      successors.
//
// A batch canceled mid-flight always fails as a whole with a retryable
// error; cancellation is never folded into a per-candidate Result.Err,
// because clients score per-candidate errors as +Inf and tuners would
// permanently discard candidates that were never actually measured.
//
// Three ways to consume the service:
//
//   - Local(): an in-process *Server used directly as a Backend
//     (no sockets) — tests, examples, single-machine tuning.
//   - NewClient(baseURL): the HTTP client for a remote `simtune serve`.
//   - ServiceRunner: a runner.Runner adapter over either, so
//     core.ExecutionPhase and simtune.TuneGroup transparently tune
//     against the service instead of in-process simulators.
package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/te"
)

// Backend executes simulation batches. *Server implements it in-process;
// *Client implements it over HTTP; *Router implements it by sharding across
// many servers. ServiceRunner and all higher layers only see this interface,
// which is what makes the in-process, remote and multi-node backends
// interchangeable.
type Backend interface {
	// Simulate executes (or serves from cache) every candidate of the
	// request. A non-nil error means the batch as a whole failed
	// (transport, unknown arch/workload, cancellation) — use IsRetryable
	// to tell transient conditions from deterministic request errors.
	// Per-candidate *deterministic* failures (broken schedules) travel
	// inside Result.Err; cancellation never does.
	Simulate(ctx context.Context, req *SimulateRequest) (*SimulateResponse, error)
	// Statusz reports server metrics.
	Statusz(ctx context.Context) (*Statusz, error)
}

// MetricsBackend is the optional telemetry surface of a Backend: a
// mergeable snapshot of its histograms, counters and gauges. *Server
// implements it natively, *Client forwards it over GET /v1/metricsz, and
// *Router implements it by merging the snapshots of every reachable node
// with its own routing-tier series — histogram buckets add element-wise, so
// the fleet p99 a router reports is the p99 of the combined sample, exact
// rather than an average of per-node quantiles.
type MetricsBackend interface {
	MetricsSnapshot(ctx context.Context) (*obs.MetricsSnapshot, error)
}

// HandoffBackend is the optional replication surface of a Backend: the
// key-inventory/fetch/ingest triple the router's warm handoff replays a
// rejoining node's corpus through. *Server implements it natively and
// *Client forwards it over /v1/keys, /v1/fetch and /v1/ingest; *Router
// deliberately does not — replication is a node-to-node concern, and
// exposing it at the routing tier would invite accidental fleet-wide
// scans.
//
// None of the three operations touch the hit/miss/canceled candidate
// accounting: they move cache contents, they do not serve candidates.
type HandoffBackend interface {
	// Keys lists the cache keys this node can serve whose ring position
	// (keyPos: the first 8 bytes of the sha256 key, big-endian) lies in
	// [lo, hi]; lo > hi wraps through zero, so one ring arc is one range.
	// Keys(ctx, 0, ^uint64(0)) lists everything.
	Keys(ctx context.Context, lo, hi uint64) ([]Key, error)
	// Fetch bulk-reads stored results; keys the node no longer holds are
	// silently dropped from the reply.
	Fetch(ctx context.Context, keys []Key) ([]Entry, error)
	// Ingest installs replayed results, skipping keys already present
	// (results are content-addressed — the values cannot differ), and
	// reports how many were new.
	Ingest(ctx context.Context, entries []Entry) (int, error)
}

// Error is a classified service failure. Status carries the HTTP taxonomy
// even for in-process backends: 4xx means the request itself is wrong
// (malformed arch/workload — retrying, here or on any other node, fails
// identically), 429 means the node's admission queue is full right now
// (retry after RetryAfter, ideally elsewhere), 5xx means this server could
// not do the work right now (canceled batch, unserved arch under the
// operator's -archs config, node fault) and a router may fail the batch
// over to a replica. writeError puts Status (and RetryAfter) on the wire
// and Client.roundTrip reconstructs them, so the classification survives
// the HTTP hop.
type Error struct {
	Status int
	Msg    string
	// RetryAfter, when non-zero, is the server's pacing hint for retrying
	// the identical request (429 overload rejections carry it). It travels
	// as a standard Retry-After header (whole seconds) plus a
	// retry_after_ms field in the JSON error body for sub-second hints.
	RetryAfter time.Duration
}

func (e *Error) Error() string { return e.Msg }

// ErrOverloaded is the admission-control rejection: the node's bounded
// admission queue (Config.MaxQueuedCandidates) is full and the batch was
// refused rather than queued without bound. Match with
// errors.Is(err, ErrOverloaded); the concrete *Error carries the
// Retry-After pacing hint. Overload is retryable — the identical batch
// succeeds once load drains, or immediately on a less-loaded replica, and
// a router tries ring successors before propagating the 429.
var ErrOverloaded = &Error{Status: 429, Msg: "overloaded"}

// Is lets errors.Is(err, ErrOverloaded) match any 429 Error regardless of
// its message or Retry-After hint.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	return ok && t == ErrOverloaded && e.Status == 429
}

// Retryable reports whether the failure is transient: the identical request
// may succeed later or on another node. Client errors are deterministic and
// never retryable — except 429, which says "not now", not "not ever"; 501
// (arch not served here) is stable operator configuration, not a transient
// fault — retrying the same node is futile, and a router routes around it
// without treating the node as sick.
func (e *Error) Retryable() bool {
	return e.Status == 429 || (e.Status >= 500 && e.Status != 501)
}

func badRequestf(format string, args ...any) *Error {
	return &Error{Status: 400, Msg: fmt.Sprintf(format, args...)}
}

func unavailablef(format string, args ...any) *Error {
	return &Error{Status: 503, Msg: fmt.Sprintf(format, args...)}
}

func unservedf(format string, args ...any) *Error {
	return &Error{Status: 501, Msg: fmt.Sprintf(format, args...)}
}

func overloadedf(retryAfter time.Duration, format string, args ...any) *Error {
	return &Error{Status: 429, Msg: fmt.Sprintf(format, args...), RetryAfter: retryAfter}
}

// isOverloaded reports the 429 admission rejection — the class a router
// retries on ring successors (the node is hot, not sick) before propagating.
func isOverloaded(err error) bool { return errors.Is(err, ErrOverloaded) }

// isUnserved reports the 501 "arch not served on this node" condition — the
// one class a router must route around per-batch without ejecting the
// (healthy) node from rotation.
func isUnserved(err error) bool {
	var se *Error
	return errors.As(err, &se) && se.Status == 501
}

// IsRetryable classifies an arbitrary Backend error: context cancellation
// and transport failures are transient; a classified *Error answers for
// itself; anything unidentified is treated as a server fault (retryable) —
// the conservative choice for a router, which would rather re-route a batch
// than permanently poison candidates with +Inf scores.
func IsRetryable(err error) bool {
	var se *Error
	if errors.As(err, &se) {
		return se.Retryable()
	}
	return true
}

// httpStatus maps a Simulate/Statusz error to its wire status.
func httpStatus(err error) int {
	var se *Error
	if errors.As(err, &se) {
		return se.Status
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return 503
	}
	return 500
}

// Config sizes a Server.
type Config struct {
	// Archs lists the served architectures (default: all three targets).
	// Each arch gets its own worker shard so a flood of RISC-V batches
	// cannot starve x86 clients.
	Archs []isa.Arch
	// WorkersPerArch is the simulator parallelism per shard (default 4 —
	// the paper's n_parallel default).
	WorkersPerArch int
	// CacheCapacity is the legacy name for the resident result bound
	// (default 1<<18). It is consulted only when MaxResidentResults is 0.
	CacheCapacity int
	// MaxResidentResults bounds how many results the cache keeps resident
	// in RAM (the ARC bound; 0 falls back to CacheCapacity and its default,
	// negative is a configuration error). The durable layer below it is
	// unbounded — disk records are the corpus the fleet paid simulations
	// for, and a key evicted from RAM is served from its segment record at
	// disk-hit rate, never re-simulated.
	MaxResidentResults int
	// CacheDir, when non-empty, enables the durable result store: computed
	// results are written behind to an append-only segment log under this
	// directory, and a restarted server serves its previously computed keys
	// as cache hits after rebuilding the key index from the segments.
	CacheDir string
	// CacheSegmentBytes rotates store segments past this size (default
	// 64 MB). Only meaningful with CacheDir.
	CacheSegmentBytes int64
	// StoreWrapFile, when non-nil, wraps every segment file the durable
	// store opens — the fault-injection seam the chaos harness uses to
	// exercise short writes and fsync failures (see StoreFaults). Leave nil
	// in production.
	StoreWrapFile func(*os.File) StoreFile
	// MaxQueuedCandidates bounds the candidates a server will hold admitted
	// (queued or running) across all shards at once — the admission gate in
	// front of the worker pools. A batch that would push the total past the
	// bound is rejected with a typed 429 (ErrOverloaded) carrying a
	// Retry-After hint instead of queueing without bound; rejections are
	// counted in statusz as rejected_candidates, outside the
	// hits+misses+canceled == candidates invariant. Default 1<<16 —
	// generous: rejection should mean genuine overload, not a burst.
	// A batch larger than the bound is still admitted when the server is
	// otherwise idle, so one oversized client degrades to serial service
	// instead of being rejected forever.
	MaxQueuedCandidates int
	// RetryAfterHint paces rejected clients: the Retry-After carried by 429
	// responses (default 1s).
	RetryAfterHint time.Duration
	// TenantWeights assigns fair-share weights to tenant identities for the
	// admission gate (see admission): under contention a tenant's slice of
	// MaxQueuedCandidates is max·w/ΣW over the active tenants. Tenants not
	// listed (including "default") weigh 1. nil means every tenant weighs 1
	// — equal shares.
	TenantWeights map[string]float64
	// DrainTimeout bounds the graceful-drain phase of ListenAndServe's
	// shutdown: how long in-flight batches may finish after SIGINT/SIGTERM
	// before they are hard-canceled (default 30s).
	DrainTimeout time.Duration
	// DisableTelemetry turns off the obs layer wholesale: no histograms,
	// no traces, no /v1/metrics series beyond what statusz already counts.
	// The request path then records nothing — this is the A/B seam the
	// telemetry-overhead benchmark flips, not a production setting.
	DisableTelemetry bool
	// TraceRingSize bounds the in-memory ring of recent batch traces
	// behind GET /v1/traces (default 256; negative disables tracing while
	// keeping metrics).
	TraceRingSize int
	// SlowBatchThreshold, when positive, logs one structured line for
	// every batch slower than it — trace ID included, so the line joins
	// against /v1/traces. Zero disables slow-batch logging.
	SlowBatchThreshold time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on this
	// server's handler. Off by default: profiling endpoints on a
	// production port are an operator decision.
	EnablePprof bool
}

func (c *Config) defaults() {
	if len(c.Archs) == 0 {
		c.Archs = isa.Archs()
	}
	if c.WorkersPerArch <= 0 {
		c.WorkersPerArch = 4
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 1 << 18
	}
	if c.MaxResidentResults == 0 {
		c.MaxResidentResults = c.CacheCapacity
	}
	if c.MaxQueuedCandidates <= 0 {
		c.MaxQueuedCandidates = 1 << 16
	}
	if c.RetryAfterHint <= 0 {
		c.RetryAfterHint = time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.TraceRingSize == 0 {
		c.TraceRingSize = 256
	}
}

// WorkloadSpec is the wire-level workload signature: enough for the server
// to reconstruct the workload from scratch (closures cannot travel over
// JSON) and stable enough to hash into cache keys.
type WorkloadSpec struct {
	// Kind selects the kernel type: "conv_group" (default) or "matmul".
	Kind string `json:"kind"`
	// Scale and Group identify a Table II conv group (conv_group kind).
	Scale string `json:"scale,omitempty"`
	Group int    `json:"group,omitempty"`
	// Dims are the matmul [n, l, m] extents (matmul kind).
	Dims []int `json:"dims,omitempty"`
}

// ConvGroupSpec is the signature of a Table II Conv2D+Bias+ReLU group.
func ConvGroupSpec(scale te.Scale, group int) WorkloadSpec {
	return WorkloadSpec{Kind: "conv_group", Scale: string(scale), Group: group}
}

// MatMulSpec is the signature of an n×l · l×m matmul workload.
func MatMulSpec(n, l, m int) WorkloadSpec {
	return WorkloadSpec{Kind: "matmul", Dims: []int{n, l, m}}
}

// Factory resolves the spec into a workload factory, validating it fully so
// a malformed request fails the batch up front instead of panicking a
// worker.
func (w WorkloadSpec) Factory() (runner.WorkloadFactory, error) {
	switch w.Kind {
	case "", "conv_group":
		scale, err := te.ParseScale(w.Scale)
		if err != nil {
			return nil, fmt.Errorf("service: workload: %w", err)
		}
		if w.Group < 0 || w.Group >= te.NumConvGroups {
			return nil, fmt.Errorf("service: workload: group %d out of range [0,%d)",
				w.Group, te.NumConvGroups)
		}
		group := w.Group
		return func() *te.Workload { return te.ConvGroup(scale, group) }, nil
	case "matmul":
		if len(w.Dims) != 3 {
			return nil, fmt.Errorf("service: workload: matmul wants 3 dims, got %d", len(w.Dims))
		}
		n, l, m := w.Dims[0], w.Dims[1], w.Dims[2]
		if n <= 0 || l <= 0 || m <= 0 {
			return nil, fmt.Errorf("service: workload: matmul dims must be positive, got %v", w.Dims)
		}
		return func() *te.Workload { return te.MatMul(n, l, m) }, nil
	}
	return nil, fmt.Errorf("service: workload: unknown kind %q (want conv_group|matmul)", w.Kind)
}

// signature renders the canonical identity string hashed into cache keys.
// It must stay injective over valid specs and stable across releases.
func (w WorkloadSpec) signature() string {
	switch w.Kind {
	case "", "conv_group":
		return fmt.Sprintf("conv_group/%s/%d", w.Scale, w.Group)
	case "matmul":
		return fmt.Sprintf("matmul/%v", w.Dims)
	}
	return fmt.Sprintf("%s/%s/%d/%v", w.Kind, w.Scale, w.Group, w.Dims)
}
