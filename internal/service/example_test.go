package service_test

import (
	"context"
	"fmt"
	"log"

	"repro/internal/isa"
	"repro/internal/runner"
	"repro/internal/service"
	"repro/internal/te"
)

// ExampleServiceRunner shows the client side of the simulate service: a
// ServiceRunner over an HTTP client (point BaseURL at a `simtune serve`
// node or a `simtune route` router — the protocol is identical) is a
// drop-in runner.Runner, so the auto-scheduler and the simtune API tune
// against the shared fleet without code changes. Compiled, not executed.
func ExampleServiceRunner() {
	r := &service.ServiceRunner{
		Backend:  service.NewClient("http://tuner-farm:8070"),
		Arch:     isa.RISCV,
		Workload: service.ConvGroupSpec(te.ScaleSmall, 3),
		NPar:     4,
	}
	var _ runner.Runner = r // what core.ExecutionPhase consumes
	results := r.Run([]runner.MeasureInput{}, nil)
	fmt.Println(len(results), r.CacheHits(), r.CacheMisses())
}

// ExampleClient_Simulate drives the wire protocol directly: one batch of
// candidate step logs in, per-candidate statistics out, with cache hits
// marked. Against a Local() server the same calls run in-process.
func ExampleClient_Simulate() {
	cl := service.NewClient("http://tuner-farm:8070")
	resp, err := cl.Simulate(context.Background(), &service.SimulateRequest{
		Arch:     "riscv",
		Workload: service.ConvGroupSpec(te.ScaleSmall, 1),
		Candidates: []service.Candidate{
			{Steps: nil}, // the unscheduled baseline implementation
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range resp.Results {
		fmt.Println(res.CacheHit, res.Stats.Total)
	}

	st, err := cl.Statusz(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(st.HitRate(), st.CacheDiskEntries)
}
