package service

import (
	"context"
	"crypto/sha256"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/schedule"
)

// Key is the content address of one simulation result: a sha256 over the
// architecture, its cache geometry, the workload signature and the canonical
// schedule-step encoding. Everything that determines the (deterministic)
// simulator statistics is in the hash; nothing else is.
type Key [sha256.Size]byte

// CacheKey computes the content address of a candidate. The geometry is
// hashed explicitly (not just the arch name) so a profile change in a future
// release cannot serve stale statistics for the old Table I parameters.
func CacheKey(arch isa.Arch, caches cache.HierarchyConfig, wl WorkloadSpec, steps []schedule.Step) Key {
	h := sha256.New()
	fmt.Fprintf(h, "simsvc:v1\x00%s\x00", arch)
	for _, lv := range []cache.Config{caches.L1D, caches.L1I, caches.L2, caches.L3} {
		fmt.Fprintf(h, "%s:%d:%d:%d\x00", lv.Name, lv.SizeBytes, lv.LineBytes, lv.Assoc)
	}
	fmt.Fprintf(h, "%s\x00", wl.signature())
	h.Write(schedule.Canonical(steps))
	var k Key
	h.Sum(k[:0])
	return k
}

// flight is one in-progress computation other requests can wait on.
type flight struct {
	done chan struct{}
}

// resultCache is the content-addressed result store plus a singleflight
// layer: concurrent requests for the same key — within one batch or across
// clients — wait for the first computation instead of duplicating it.
// When disk is non-nil it is the durable layer beneath the in-memory map:
// computed results are written behind asynchronously, and a key missing
// from RAM (restart, eviction) is served from its segment record instead of
// re-simulated.
type resultCache struct {
	mu       sync.Mutex
	entries  map[Key]Result
	inflight map[Key]*flight
	capacity int
	disk     *Store // nil: memory-only

	hits   atomic.Uint64
	misses atomic.Uint64
	// canceled counts do() calls that returned with a context error instead
	// of a result — leaders whose compute was canceled and waiters whose
	// context died mid-flight. Without it, hits+misses undercounts served
	// candidates (requests/candidates keep counting), and the Eq. (4)
	// CacheStats accounting drifts on every aborted batch.
	canceled atomic.Uint64
	// diskHits is the subset of hits served from the durable store rather
	// than RAM (each key pays at most one disk read per process — it is
	// promoted into the map on first touch). hits already includes them, so
	// the hits+misses+canceled == candidates reconciliation is unchanged.
	diskHits atomic.Uint64
	// handoffKeys counts results ingested through the warm-handoff replay
	// (/v1/ingest). Handoff entries are not candidate servings, so they
	// deliberately touch none of the counters above.
	handoffKeys atomic.Uint64
}

func newResultCache(capacity int, disk *Store) *resultCache {
	return &resultCache{
		entries:  make(map[Key]Result),
		inflight: make(map[Key]*flight),
		capacity: capacity,
		disk:     disk,
	}
}

// do returns the cached result for k, or computes it exactly once across all
// concurrent callers. hit reports whether this caller was spared a
// simulation (served from the map or from another caller's flight). compute
// returns a non-nil error only for non-deterministic failures (cancellation)
// — those are never cached; deterministic build/simulate failures travel
// inside Result.Err and are cached like successes, since re-submitting a
// broken candidate would fail identically.
func (c *resultCache) do(ctx context.Context, k Key, compute func() (Result, error)) (r Result, hit bool, err error) {
	return c.doTimed(ctx, k, nil, compute)
}

// doTimed is do with optional stage timing: a non-nil tm accumulates how
// long this caller spent waiting on another flight (singleflight_wait) and
// reading the durable layer (disk_hit). nil tm measures nothing — the
// telemetry-off path takes no clock reads here.
func (c *resultCache) doTimed(ctx context.Context, k Key, tm *candTimings, compute func() (Result, error)) (r Result, hit bool, err error) {
	diskChecked := false
	for {
		c.mu.Lock()
		if r, ok := c.entries[k]; ok {
			c.mu.Unlock()
			c.hits.Add(1)
			return r, true, nil
		}
		if f, ok := c.inflight[k]; ok {
			c.mu.Unlock()
			var w0 time.Time
			if tm != nil {
				w0 = time.Now()
			}
			select {
			case <-f.done:
				// The leader finished (or abandoned): loop to re-check the
				// map and, if the leader was canceled, take over.
				if tm != nil {
					tm.sfWait += time.Since(w0)
				}
				continue
			case <-ctx.Done():
				if tm != nil {
					tm.sfWait += time.Since(w0)
				}
				c.canceled.Add(1)
				return Result{}, false, ctx.Err()
			}
		}
		if c.disk != nil && !diskChecked {
			// Not in RAM and nobody is computing it: the durable layer may
			// hold it from a previous process lifetime (or after eviction).
			// Read outside the lock — a racing reader doing the same work
			// promotes the identical value, which is harmless.
			c.mu.Unlock()
			diskChecked = true
			var d0 time.Time
			if tm != nil {
				d0 = time.Now()
			}
			res, ok := c.disk.Get(k)
			if tm != nil {
				tm.disk += time.Since(d0)
				tm.diskHit = ok
			}
			if ok {
				c.mu.Lock()
				c.store(k, res)
				c.mu.Unlock()
				c.hits.Add(1)
				c.diskHits.Add(1)
				return res, true, nil
			}
			continue
		}
		f := &flight{done: make(chan struct{})}
		c.inflight[k] = f
		c.mu.Unlock()

		r, err := compute()
		c.mu.Lock()
		if err == nil {
			c.store(k, r)
		}
		delete(c.inflight, k)
		c.mu.Unlock()
		close(f.done)
		if err != nil {
			c.canceled.Add(1)
			return Result{}, false, err
		}
		if c.disk != nil {
			// Write-behind: the simulate path never waits on the disk.
			c.disk.Put(k, r)
		}
		c.misses.Add(1)
		return r, false, nil
	}
}

// keysInRange lists every key this cache can serve (RAM and durable layer)
// whose ring position falls in [lo, hi] (wrapping when lo > hi) — the
// /v1/keys surface the warm-handoff replay walks.
func (c *resultCache) keysInRange(lo, hi uint64) []Key {
	seen := make(map[Key]bool)
	c.mu.Lock()
	out := make([]Key, 0, len(c.entries))
	for k := range c.entries {
		if posInRange(keyPos(k), lo, hi) {
			seen[k] = true
			out = append(out, k)
		}
	}
	c.mu.Unlock()
	if c.disk != nil {
		for _, k := range c.disk.Keys(lo, hi) {
			if !seen[k] {
				out = append(out, k)
			}
		}
	}
	return out
}

// fetch returns the stored results for the requested keys (absent keys are
// silently dropped — the caller asked from a possibly stale key listing).
// Serving a fetch is replication traffic, not candidate traffic, so it
// touches none of the hit/miss counters.
func (c *resultCache) fetch(keys []Key) []Entry {
	out := make([]Entry, 0, len(keys))
	for _, k := range keys {
		c.mu.Lock()
		r, ok := c.entries[k]
		c.mu.Unlock()
		if !ok && c.disk != nil {
			r, ok = c.disk.Get(k)
		}
		if ok {
			out = append(out, Entry{Key: k, Result: r})
		}
	}
	return out
}

// ingest installs replayed results from a peer (warm handoff). Keys already
// present are skipped — results are content-addressed, so the values cannot
// differ. Returns how many entries were new; those count into handoffKeys,
// not hits/misses (nothing was served to a client).
func (c *resultCache) ingest(entries []Entry) int {
	n := 0
	for _, e := range entries {
		c.mu.Lock()
		_, inRAM := c.entries[e.Key]
		if !inRAM {
			c.store(e.Key, e.Result)
		}
		c.mu.Unlock()
		onDisk := false
		if c.disk != nil {
			onDisk = c.disk.Has(e.Key)
			if !onDisk {
				c.disk.Put(e.Key, e.Result)
			}
		}
		if !inRAM && !onDisk {
			n++
		}
	}
	c.handoffKeys.Add(uint64(n))
	return n
}

// store inserts under the capacity bound. Eviction is deliberately crude —
// drop arbitrary entries (Go map iteration order) until under budget; a
// content-addressed cache of deterministic results has no freshness to
// preserve and refilling a dropped key costs one simulation.
func (c *resultCache) store(k Key, r Result) {
	if len(c.entries) >= c.capacity {
		for victim := range c.entries {
			delete(c.entries, victim)
			if len(c.entries) < c.capacity {
				break
			}
		}
	}
	c.entries[k] = r
}

// len reports the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
