package service

import (
	"context"
	"crypto/sha256"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/schedule"
)

// Key is the content address of one simulation result: a sha256 over the
// architecture, its cache geometry, the workload signature and the canonical
// schedule-step encoding. Everything that determines the (deterministic)
// simulator statistics is in the hash; nothing else is.
type Key [sha256.Size]byte

// CacheKey computes the content address of a candidate. The geometry is
// hashed explicitly (not just the arch name) so a profile change in a future
// release cannot serve stale statistics for the old Table I parameters.
func CacheKey(arch isa.Arch, caches cache.HierarchyConfig, wl WorkloadSpec, steps []schedule.Step) Key {
	h := sha256.New()
	fmt.Fprintf(h, "simsvc:v1\x00%s\x00", arch)
	for _, lv := range []cache.Config{caches.L1D, caches.L1I, caches.L2, caches.L3} {
		fmt.Fprintf(h, "%s:%d:%d:%d\x00", lv.Name, lv.SizeBytes, lv.LineBytes, lv.Assoc)
	}
	fmt.Fprintf(h, "%s\x00", wl.signature())
	h.Write(schedule.Canonical(steps))
	var k Key
	h.Sum(k[:0])
	return k
}

// flight is one in-progress computation other requests can wait on.
type flight struct {
	done chan struct{}
}

// ARC list membership. T1/T2 entries are resident (hold a Result); B1/B2 are
// ghosts — the key is tracked for adaptation but the value was evicted and
// lives only in the durable store (or, on a memory-only cache, is gone and
// costs one simulation to refill).
const (
	listT1 int8 = iota // resident, seen once recently
	listT2             // resident, seen at least twice
	listB1             // ghost evicted from T1
	listB2             // ghost evicted from T2
)

// cacheEntry is one tracked key: an intrusive node on exactly one of the four
// ARC lists. res is zeroed when the entry is demoted to a ghost list.
type cacheEntry struct {
	key        Key
	res        Result
	list       int8
	prev, next *cacheEntry
}

func (e *cacheEntry) resident() bool { return e.list == listT1 || e.list == listT2 }

// entryList is an intrusive doubly-linked list with a sentinel root:
// root.next is the MRU end, root.prev the LRU end.
type entryList struct {
	root cacheEntry
	n    int
}

func (l *entryList) init() {
	l.root.next = &l.root
	l.root.prev = &l.root
	l.n = 0
}

func (l *entryList) pushFront(e *cacheEntry) {
	e.prev = &l.root
	e.next = l.root.next
	e.prev.next = e
	e.next.prev = e
	l.n++
}

func (l *entryList) remove(e *cacheEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
	l.n--
}

func (l *entryList) back() *cacheEntry {
	if l.n == 0 {
		return nil
	}
	return l.root.prev
}

// resultCache is the content-addressed result store plus a singleflight
// layer: concurrent requests for the same key — within one batch or across
// clients — wait for the first computation instead of duplicating it.
//
// Residency is bounded by an ARC policy (Megiddo & Modha): at most capacity
// results are held in RAM, split between a recency list (T1) and a frequency
// list (T2) whose balance adapts via ghost hits (B1/B2 track recently evicted
// keys without their values). capacity <= 0 means unbounded — no eviction,
// no ghosts. When disk is non-nil it is the durable layer beneath the
// resident set: computed results are written behind asynchronously, and a key
// missing from RAM (restart, eviction) is served from its segment record
// instead of re-simulated. The miss path installs the durable record
// *before* the entry becomes resident, so every evictable entry is already
// servable from disk — bounding RAM never loses a paid-for result.
type resultCache struct {
	mu       sync.Mutex
	entries  map[Key]*cacheEntry // every tracked key: resident and ghost
	inflight map[Key]*flight
	capacity int
	disk     *Store // nil: memory-only

	// ARC state (all guarded by mu). p is the adaptive target size of T1.
	p              int
	t1, t2, b1, b2 entryList

	hits   atomic.Uint64
	misses atomic.Uint64
	// canceled counts do() calls that returned with a context error instead
	// of a result — leaders whose compute was canceled and waiters whose
	// context died mid-flight. Without it, hits+misses undercounts served
	// candidates (requests/candidates keep counting), and the Eq. (4)
	// CacheStats accounting drifts on every aborted batch.
	canceled atomic.Uint64
	// diskHits is the subset of hits served from the durable store rather
	// than RAM (first touch of a key after a restart or after eviction).
	// hits already includes them, so the hits+misses+canceled == candidates
	// reconciliation is unchanged.
	diskHits atomic.Uint64
	// handoffKeys counts results ingested through the warm-handoff replay
	// (/v1/ingest). Handoff entries are not candidate servings, so they
	// deliberately touch none of the counters above.
	handoffKeys atomic.Uint64
	// evictions counts resident entries demoted to ghosts (or dropped
	// outright) by the ARC bound. Like handoffKeys it is a parallel ledger:
	// an eviction serves no candidate, so it stays outside the
	// hits+misses+canceled == candidates reconciliation.
	evictions atomic.Uint64
}

func newResultCache(capacity int, disk *Store) *resultCache {
	c := &resultCache{
		entries:  make(map[Key]*cacheEntry),
		inflight: make(map[Key]*flight),
		capacity: capacity,
		disk:     disk,
	}
	c.t1.init()
	c.t2.init()
	c.b1.init()
	c.b2.init()
	return c
}

// do returns the cached result for k, or computes it exactly once across all
// concurrent callers. hit reports whether this caller was spared a
// simulation (served from the resident set, the durable store, or another
// caller's flight). compute returns a non-nil error only for
// non-deterministic failures (cancellation) — those are never cached;
// deterministic build/simulate failures travel inside Result.Err and are
// cached like successes, since re-submitting a broken candidate would fail
// identically.
func (c *resultCache) do(ctx context.Context, k Key, compute func() (Result, error)) (r Result, hit bool, err error) {
	return c.doTimed(ctx, k, nil, compute)
}

// doTimed is do with optional stage timing: a non-nil tm accumulates how
// long this caller spent waiting on another flight (singleflight_wait),
// reading the durable layer (disk_hit), and doing eviction bookkeeping
// (evict). nil tm measures nothing — the telemetry-off path takes no clock
// reads here.
func (c *resultCache) doTimed(ctx context.Context, k Key, tm *candTimings, compute func() (Result, error)) (r Result, hit bool, err error) {
	diskChecked := false
	for {
		c.mu.Lock()
		if e, ok := c.entries[k]; ok && e.resident() {
			c.touch(e)
			r := e.res
			c.mu.Unlock()
			c.hits.Add(1)
			return r, true, nil
		}
		if f, ok := c.inflight[k]; ok {
			c.mu.Unlock()
			var w0 time.Time
			if tm != nil {
				w0 = time.Now()
			}
			select {
			case <-f.done:
				// The leader finished (or abandoned): loop to re-check the
				// map and, if the leader was canceled, take over.
				if tm != nil {
					tm.sfWait += time.Since(w0)
				}
				continue
			case <-ctx.Done():
				if tm != nil {
					tm.sfWait += time.Since(w0)
				}
				c.canceled.Add(1)
				return Result{}, false, ctx.Err()
			}
		}
		if c.disk != nil && !diskChecked {
			// Not resident and nobody is computing it: the durable layer may
			// hold it from a previous process lifetime or from before an
			// eviction. Read outside the lock — a racing reader doing the
			// same work promotes the identical value, which is harmless.
			c.mu.Unlock()
			diskChecked = true
			var d0 time.Time
			if tm != nil {
				d0 = time.Now()
			}
			res, ok := c.disk.Get(k)
			if tm != nil {
				tm.disk += time.Since(d0)
				tm.diskHit = ok
			}
			if ok {
				c.storeTimed(k, res, tm)
				c.hits.Add(1)
				c.diskHits.Add(1)
				return res, true, nil
			}
			continue
		}
		f := &flight{done: make(chan struct{})}
		c.inflight[k] = f
		c.mu.Unlock()

		r, err := compute()
		if err == nil && c.disk != nil {
			// Durability before evictability: Put lands the result in the
			// store's pending map synchronously (the disk write itself is
			// behind), so by the time the entry is resident — and therefore
			// evictable — the durable layer can already serve it.
			c.disk.Put(k, r)
		}
		var e0 time.Time
		if tm != nil {
			e0 = time.Now()
		}
		ev := 0
		c.mu.Lock()
		if err == nil {
			ev = c.store(k, r)
		}
		delete(c.inflight, k)
		c.mu.Unlock()
		close(f.done)
		if tm != nil && ev > 0 {
			tm.evict += time.Since(e0)
			tm.evicted = true
		}
		if err != nil {
			c.canceled.Add(1)
			return Result{}, false, err
		}
		c.misses.Add(1)
		return r, false, nil
	}
}

// storeTimed installs a result with the same nil-guarded evict timing as the
// miss path (used by the disk-promote path, which runs without the lock).
func (c *resultCache) storeTimed(k Key, r Result, tm *candTimings) {
	var e0 time.Time
	if tm != nil {
		e0 = time.Now()
	}
	c.mu.Lock()
	ev := c.store(k, r)
	c.mu.Unlock()
	if tm != nil && ev > 0 {
		tm.evict += time.Since(e0)
		tm.evicted = true
	}
}

// keysInRange lists every key this cache can serve (resident set and durable
// layer) whose ring position falls in [lo, hi] (wrapping when lo > hi) — the
// /v1/keys surface the warm-handoff replay and anti-entropy rounds walk.
// Ghost entries are skipped: their values live on disk (covered by
// disk.Keys) or are gone.
func (c *resultCache) keysInRange(lo, hi uint64) []Key {
	seen := make(map[Key]bool)
	c.mu.Lock()
	out := make([]Key, 0, c.t1.n+c.t2.n)
	for k, e := range c.entries {
		if e.resident() && posInRange(keyPos(k), lo, hi) {
			seen[k] = true
			out = append(out, k)
		}
	}
	c.mu.Unlock()
	if c.disk != nil {
		for _, k := range c.disk.Keys(lo, hi) {
			if !seen[k] {
				out = append(out, k)
			}
		}
	}
	return out
}

// fetch returns the stored results for the requested keys (absent keys are
// silently dropped — the caller asked from a possibly stale key listing).
// Keys evicted from RAM read through to the durable store, so replication
// never under-reports a bounded node's corpus. Serving a fetch is
// replication traffic, not candidate traffic, so it touches none of the
// hit/miss counters and does not perturb ARC recency.
func (c *resultCache) fetch(keys []Key) []Entry {
	out := make([]Entry, 0, len(keys))
	for _, k := range keys {
		var r Result
		ok := false
		c.mu.Lock()
		if e, got := c.entries[k]; got && e.resident() {
			r, ok = e.res, true
		}
		c.mu.Unlock()
		if !ok && c.disk != nil {
			r, ok = c.disk.Get(k)
		}
		if ok {
			out = append(out, Entry{Key: k, Result: r})
		}
	}
	return out
}

// ingest installs replayed results from a peer (warm handoff, write-through
// replication, anti-entropy). Keys already present are skipped — results are
// content-addressed, so the values cannot differ. On a durable node the
// entries go to disk only: pulling replication traffic into the bounded
// resident set would evict genuinely hot keys (ingest-side scan resistance);
// the key is served from its segment record on first client touch. Returns
// how many entries were new; those count into handoffKeys, not hits/misses
// (nothing was served to a client).
func (c *resultCache) ingest(entries []Entry) int {
	n := 0
	for _, e := range entries {
		c.mu.Lock()
		ce, got := c.entries[e.Key]
		inRAM := got && ce.resident()
		if !inRAM && c.disk == nil {
			c.store(e.Key, e.Result)
		}
		c.mu.Unlock()
		onDisk := false
		if c.disk != nil {
			onDisk = c.disk.Has(e.Key)
			if !onDisk {
				c.disk.Put(e.Key, e.Result)
			}
		}
		if !inRAM && !onDisk {
			n++
		}
	}
	c.handoffKeys.Add(uint64(n))
	return n
}

// store installs k under the ARC policy and returns how many resident
// entries were evicted to make room (0 or 1). Callers hold c.mu.
//
// The four ARC cases (Megiddo & Modha, FAST '03), with one safety deviation:
// replace() is a no-op while the resident set is under budget, so a ghost
// hit on a part-full cache never evicts.
func (c *resultCache) store(k Key, r Result) int {
	if e, ok := c.entries[k]; ok {
		switch e.list {
		case listT1, listT2:
			// Case I: resident hit — refresh the value, promote to T2 MRU.
			e.res = r
			c.touch(e)
			return 0
		case listB1:
			// Case II: ghost hit in B1 — recency is paying off; grow T1's
			// target share before making room.
			d := 1
			if c.b1.n > 0 && c.b2.n/c.b1.n > 1 {
				d = c.b2.n / c.b1.n
			}
			c.p += d
			if c.p > c.capacity {
				c.p = c.capacity
			}
			ev := c.replace(false)
			c.b1.remove(e)
			e.res = r
			e.list = listT2
			c.t2.pushFront(e)
			return ev
		default: // listB2
			// Case III: ghost hit in B2 — frequency is paying off; shrink
			// T1's target share before making room.
			d := 1
			if c.b2.n > 0 && c.b1.n/c.b2.n > 1 {
				d = c.b1.n / c.b2.n
			}
			c.p -= d
			if c.p < 0 {
				c.p = 0
			}
			ev := c.replace(true)
			c.b2.remove(e)
			e.res = r
			e.list = listT2
			c.t2.pushFront(e)
			return ev
		}
	}
	e := &cacheEntry{key: k, res: r, list: listT1}
	if c.capacity <= 0 {
		// Unbounded: plain insert, no ghosts, no eviction.
		c.entries[k] = e
		c.t1.pushFront(e)
		return 0
	}
	// Case IV: brand-new key.
	ev := 0
	if c.t1.n+c.b1.n >= c.capacity {
		if c.t1.n < c.capacity {
			if g := c.b1.back(); g != nil {
				c.b1.remove(g)
				delete(c.entries, g.key)
			}
			ev = c.replace(false)
		} else if v := c.t1.back(); v != nil {
			// B1 is empty and T1 fills the whole budget: drop T1's LRU
			// outright (no ghost — the directory is already at capacity).
			c.t1.remove(v)
			delete(c.entries, v.key)
			c.evictions.Add(1)
			ev = 1
		}
	} else if total := c.t1.n + c.t2.n + c.b1.n + c.b2.n; total >= c.capacity {
		if total >= 2*c.capacity {
			if g := c.b2.back(); g != nil {
				c.b2.remove(g)
				delete(c.entries, g.key)
			}
		}
		ev = c.replace(false)
	}
	c.entries[k] = e
	c.t1.pushFront(e)
	return ev
}

// touch moves a resident entry to T2's MRU position (a second access proves
// frequency). Callers hold c.mu.
func (c *resultCache) touch(e *cacheEntry) {
	switch e.list {
	case listT1:
		c.t1.remove(e)
	case listT2:
		c.t2.remove(e)
	}
	e.list = listT2
	c.t2.pushFront(e)
}

// replace demotes one resident entry to its ghost list, honoring the
// adaptive target p: T1's LRU goes to B1 while T1 exceeds its share,
// otherwise T2's LRU goes to B2. Returns how many entries were evicted
// (0 while the resident set is under budget — nothing needs to go).
// Callers hold c.mu.
func (c *resultCache) replace(inB2 bool) int {
	if c.t1.n+c.t2.n < c.capacity {
		return 0
	}
	if c.t1.n > 0 && (c.t1.n > c.p || (inB2 && c.t1.n == c.p) || c.t2.n == 0) {
		v := c.t1.back()
		c.t1.remove(v)
		v.res = Result{}
		v.list = listB1
		c.b1.pushFront(v)
	} else {
		v := c.t2.back()
		if v == nil {
			return 0
		}
		c.t2.remove(v)
		v.res = Result{}
		v.list = listB2
		c.b2.pushFront(v)
	}
	c.evictions.Add(1)
	return 1
}

// len reports the resident entry count (|T1| + |T2|) — ghosts hold no
// results, so they are not "entries" to the statusz surface.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t1.n + c.t2.n
}
