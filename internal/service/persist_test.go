package service

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/ansor"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/schedule"
	"repro/internal/te"
)

// TestServerRestartRecovery pins the durable-store contract at the batch
// level: a server killed and restarted over the same -cache-dir serves its
// previously computed keys as cache hits — bit-identical results, zero
// re-simulation — and the statusz reconciliation (hits+misses+canceled ==
// candidates) holds on both lifetimes, with the disk serves split out in
// cache_disk_hits.
func TestServerRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	const group, n = 1, 16
	cfg := Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2, CacheDir: dir}
	req := &SimulateRequest{
		Arch:       "riscv",
		Workload:   ConvGroupSpec(te.ScaleTiny, group),
		Candidates: tinyCandidates(t, group, n),
	}

	srv1 := mustServer(t, cfg)
	cold, err := srv1.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	st1, _ := srv1.Statusz(context.Background())
	if st1.CacheMisses != n || st1.CacheHits != 0 || st1.CacheDiskHits != 0 {
		t.Fatalf("first lifetime counters off: %+v", st1)
	}
	// Kill the server. Close flushes the write-behind queue to disk.
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	srv2 := mustServer(t, cfg)
	defer srv2.Close()
	st2, _ := srv2.Statusz(context.Background())
	if st2.CacheDiskEntries != n {
		t.Fatalf("restart recovered %d disk entries, want %d", st2.CacheDiskEntries, n)
	}
	if st2.CacheEntries != 0 {
		t.Fatalf("restart began with %d RAM entries, want 0 (index-only recovery)", st2.CacheEntries)
	}
	warm, err := srv2.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range warm.Results {
		if !res.CacheHit {
			t.Fatalf("candidate %d: restarted server re-simulated a stored key", i)
		}
		if !reflect.DeepEqual(res.Stats, cold.Results[i].Stats) {
			t.Fatalf("candidate %d: recovered stats not bit-identical:\n got %+v\nwant %+v",
				i, res.Stats, cold.Results[i].Stats)
		}
	}
	st2, _ = srv2.Statusz(context.Background())
	if st2.CacheHits != n || st2.CacheMisses != 0 {
		t.Fatalf("restarted lifetime counters off: %+v", st2)
	}
	if st2.CacheDiskHits != n {
		t.Fatalf("cache_disk_hits = %d, want %d (every key served from the segment log once)",
			st2.CacheDiskHits, n)
	}
	if st2.CacheHits+st2.CacheMisses+st2.CacheCanceled != st2.Candidates {
		t.Fatalf("statusz does not reconcile after restart: %+v", st2)
	}
	if sim := st2.Shards[0].Simulated; sim != 0 {
		t.Fatalf("restarted server simulated %d candidates for a fully stored batch", sim)
	}

	// Second touch of the same keys is RAM-served: disk hits must not grow.
	if _, err := srv2.Simulate(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	st3, _ := srv2.Statusz(context.Background())
	if st3.CacheDiskHits != n {
		t.Fatalf("promoted keys read the disk again: cache_disk_hits %d, want %d",
			st3.CacheDiskHits, n)
	}
}

// TestEndToEndTuneRestartRecovery is the acceptance path of the durable
// store: a full tuning run against a live HTTP server with -cache-dir,
// then the server is killed and restarted over the same directory, and the
// re-submitted tuning run must be ≥ 99% absorbed by the recovered cache
// with bit-identical records.
func TestEndToEndTuneRestartRecovery(t *testing.T) {
	const (
		group  = 1
		trials = 24
		seed   = 5
	)
	dir := t.TempDir()
	cfg := Config{Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 4, CacheDir: dir}
	prof := hw.Lookup(isa.RISCV)
	baseOpt := core.ExecutionOptions{
		Scale: te.ScaleTiny, Group: group, Trials: trials, BatchSize: 8,
		NParallel: 4, Seed: seed,
	}
	tuneVia := func(url string) []ansor.Record {
		opt := baseOpt
		opt.Runner = &ServiceRunner{
			Backend:  NewClient(url),
			Arch:     isa.RISCV,
			Workload: ConvGroupSpec(te.ScaleTiny, group),
			NPar:     4,
		}
		opt.Builder = NopBuilder{}
		recs, err := core.ExecutionPhase(prof, stubPredictor{}, opt)
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}

	srv1 := mustServer(t, cfg)
	hs1 := httptest.NewServer(srv1.Handler())
	first := tuneVia(hs1.URL)
	hs1.Close()
	if err := srv1.Close(); err != nil { // kill: flush and release the log
		t.Fatal(err)
	}

	srv2 := mustServer(t, cfg)
	defer srv2.Close()
	hs2 := httptest.NewServer(srv2.Handler())
	defer hs2.Close()
	rerun := tuneVia(hs2.URL)

	if len(rerun) != len(first) {
		t.Fatalf("re-run measured %d records, first run %d", len(rerun), len(first))
	}
	for i := range rerun {
		if schedule.Fingerprint(rerun[i].Steps) != schedule.Fingerprint(first[i].Steps) {
			t.Fatalf("record %d: search diverged across restart", i)
		}
		got, want := normalized(rerun[i].Stats), normalized(first[i].Stats)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d: recovered stats not bit-identical:\n got %+v\nwant %+v", i, got, want)
		}
		if rerun[i].Score != first[i].Score {
			t.Fatalf("record %d: score %v != first run %v", i, rerun[i].Score, first[i].Score)
		}
	}
	hits, misses, _ := core.CacheStats(rerun)
	if rate := float64(hits) / float64(hits+misses); rate < 0.99 {
		t.Fatalf("restart re-run hit rate %.2f, want >= 0.99 (%d hits / %d misses)", rate, hits, misses)
	}
	st, err := NewClient(hs2.URL).Statusz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheDiskHits == 0 {
		t.Fatal("restarted server served no disk hits — recovery did not engage")
	}
	if st.CacheHits+st.CacheMisses+st.CacheCanceled != st.Candidates {
		t.Fatalf("statusz does not reconcile on the restarted server: %+v", st)
	}
}
