package service

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// defaultRingReplicas is the virtual-node count per backend. 128 points per
// node keeps the largest/smallest arc ratio low enough that a 3-node ring
// splits the key space within a few percent of evenly, at a lookup cost of
// one binary search over n*128 points.
const defaultRingReplicas = 128

// ring is a consistent-hash ring over backend nodes, positioned in the same
// sha256 space the cache Key lives in. Each node owns the arcs that end at
// its virtual points, so each cache key has exactly one owner — the property
// that makes the global cache dedupe across clients instead of per-node —
// and adding or removing one node only moves the keys on that node's arcs.
type ring struct {
	points []ringPoint // sorted by pos
	nodes  int
}

type ringPoint struct {
	pos  uint64
	node int
}

// newRing places replicas virtual points per node. Node identities are the
// caller's strings (base URLs), hashed so the placement is stable across
// processes and restarts — a router restart must not reshuffle the key
// space under a warm fleet of caches.
func newRing(nodeIDs []string, replicas int) *ring {
	if replicas <= 0 {
		replicas = defaultRingReplicas
	}
	r := &ring{
		points: make([]ringPoint, 0, len(nodeIDs)*replicas),
		nodes:  len(nodeIDs),
	}
	for n, id := range nodeIDs {
		for v := 0; v < replicas; v++ {
			h := sha256.Sum256([]byte(fmt.Sprintf("ring:%s#%d", id, v)))
			r.points = append(r.points, ringPoint{pos: binary.BigEndian.Uint64(h[:8]), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		// Ties (astronomically unlikely) break deterministically by node.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// keyPos projects a cache key onto the ring.
func keyPos(k Key) uint64 { return binary.BigEndian.Uint64(k[:8]) }

// owner returns the node owning k: the first virtual point clockwise from
// the key's position.
func (r *ring) owner(k Key) int {
	return r.points[r.search(keyPos(k))].node
}

// successors returns all nodes in ring order starting at k's owner, each
// node once. Index 0 is the owner; a router walks the tail when nodes are
// down, so a failed node's keys drain onto its ring successors (spreading
// roughly evenly, since the node's virtual points interleave with
// everyone's) instead of piling onto one designated backup.
func (r *ring) successors(k Key) []int {
	out := make([]int, 0, r.nodes)
	seen := make([]bool, r.nodes)
	for i, n := r.search(keyPos(k)), 0; n < r.nodes; i++ {
		if i == len(r.points) {
			i = 0
		}
		if node := r.points[i].node; !seen[node] {
			seen[node] = true
			out = append(out, node)
			n++
		}
	}
	return out
}

// search finds the index of the first point at or clockwise of pos.
func (r *ring) search(pos uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		i = 0
	}
	return i
}
