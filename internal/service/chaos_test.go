package service

import (
	"context"
	"errors"
	"net"
	"net/http"
	"os"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/ansor"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/te"
)

// chaosSeed makes every fault schedule in this file reproducible: the same
// seed drives the same PRNG draws, so a failure replays identically (the
// only residual nondeterminism is goroutine interleaving).
const chaosSeed = 20250807

// errForcedSweep labels the deliberate down→up cycles the test uses to make
// the router re-run its rejoin replay on a clean wire.
var errForcedSweep = errors.New("forced rejoin sweep (test)")

// chaosNode is one fleet member with everything a restart needs: a durable
// store directory, a fixed listen address (re-bound on restart so the
// router's ring identity is stable), and the server currently behind it.
type chaosNode struct {
	t    *testing.T
	dir  string
	addr string

	mu   sync.Mutex
	srv  *Server
	hsrv *http.Server
	ln   net.Listener
}

func (n *chaosNode) config() Config {
	return Config{
		Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2, CacheDir: n.dir,
	}
}

// start opens (or recovers) the node's store and serves it on its address.
func (n *chaosNode) start(wrap func(Config) Config) {
	n.t.Helper()
	cfg := n.config()
	if wrap != nil {
		cfg = wrap(cfg)
	}
	srv, err := NewServer(cfg)
	if err != nil {
		n.t.Fatal(err)
	}
	listenAddr := n.addr
	if listenAddr == "" {
		listenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		n.t.Fatal(err)
	}
	hsrv := &http.Server{Handler: srv.Handler()}
	go hsrv.Serve(ln)
	n.mu.Lock()
	n.srv, n.hsrv, n.ln = srv, hsrv, ln
	n.addr = ln.Addr().String()
	n.mu.Unlock()
}

func (n *chaosNode) server() *Server {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.srv
}

// drainStop is the SIGTERM path a real `simtune serve` takes: drain the
// server (statusz flips to draining first, so a probing router rotates the
// node out), then stop the HTTP surface.
func (n *chaosNode) drainStop() {
	n.t.Helper()
	if err := n.server().Shutdown(context.Background()); err != nil {
		n.t.Fatalf("drain %s: %v", n.addr, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	n.mu.Lock()
	hsrv := n.hsrv
	n.mu.Unlock()
	if err := hsrv.Shutdown(ctx); err != nil {
		n.t.Fatalf("http stop %s: %v", n.addr, err)
	}
}

func (n *chaosNode) stop() {
	n.drainStop()
}

// TestChaosTuneThroughFaultyFleet is the chaos acceptance run: a full tune
// through a 3-node consistent-hash fleet while the wire drops, delays,
// truncates and 5xxes and two nodes' disks tear writes and fail fsyncs —
// followed by a SIGTERM-style drain/restart/rejoin of the third node. The
// standing invariants must hold throughout:
//
//   - results bit-identical to the in-process run (faults may slow the
//     tune, never corrupt it)
//   - every node's statusz reconciles: hits+misses+canceled == candidates,
//     rejections (none here) in their own ledger
//   - after recovery the corpus is whole: re-running the tune simulates
//     nothing anywhere (durable recovery + warm handoff cover the restart)
//   - the harness does not leak goroutines
func TestChaosTuneThroughFaultyFleet(t *testing.T) {
	const (
		group  = 1
		trials = 24
		seed   = 5
	)
	sentinel := obs.NewGoroutineSentinel()

	prof := hw.Lookup(isa.RISCV)
	baseOpt := core.ExecutionOptions{
		Scale: te.ScaleTiny, Group: group, Trials: trials, BatchSize: 8,
		NParallel: 4, Seed: seed,
	}
	inproc, err := core.ExecutionPhase(prof, stubPredictor{}, baseOpt)
	if err != nil {
		t.Fatal(err)
	}

	// The fleet: node 0 is the one we will drain and restart, so its disk
	// stays honest (a record lost to an injected write fault would live only
	// in RAM and a restart would legitimately re-simulate it — that is crash
	// semantics, not a bug, but it would blur the zero-duplicate assertion).
	// Nodes 1 and 2 keep running, so their RAM cache covers whatever their
	// faulty disks dropped.
	storeFaults := []*StoreFaults{
		nil,
		NewStoreFaults(chaosSeed+1, 0.10, 0.10),
		NewStoreFaults(chaosSeed+2, 0.10, 0.10),
	}
	nodes := make([]*chaosNode, 3)
	for i := range nodes {
		nodes[i] = &chaosNode{t: t, dir: t.TempDir()}
		sf := storeFaults[i]
		nodes[i].start(func(cfg Config) Config {
			if sf != nil {
				cfg.StoreWrapFile = sf.WrapFile
			}
			return cfg
		})
	}

	// The faulty wire sits between router and nodes — the hop that fans out
	// every batch. An inner transport of our own lets the leak check close
	// its idle connections deterministically.
	inner := &http.Transport{}
	ft := NewFaultTransport(inner, chaosSeed, TransportFaults{
		DropProb: 0.12, Err5xxProb: 0.12, TruncateProb: 0.08,
		DelayProb: 0.20, Delay: 2 * time.Millisecond,
	})
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = "http://" + n.addr
	}
	rt, err := NewRouter(RouterConfig{
		Nodes: urls, ProbeInterval: -1, // probed manually below, deterministically stoppable
		HTTPClient: &http.Client{Transport: ft, Timeout: 30 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Manual probe loop: transport faults mark nodes down mid-tune; the
	// probe brings them back (running the warm-handoff replay on every
	// down→up transition, faults and all).
	probeCtx, stopProbe := context.WithCancel(context.Background())
	var probeWG sync.WaitGroup
	probeWG.Add(1)
	go func() {
		defer probeWG.Done()
		for {
			select {
			case <-probeCtx.Done():
				return
			case <-time.After(20 * time.Millisecond):
				rt.probeOnce(probeCtx)
			}
		}
	}()

	tune := func() []ansor.Record {
		opt := baseOpt
		opt.Runner = &ServiceRunner{
			Backend:  rt,
			Arch:     isa.RISCV,
			Workload: ConvGroupSpec(te.ScaleTiny, group),
			NPar:     4,
			Retries:  20, RetryBackoff: 5 * time.Millisecond, RetryBackoffMax: 80 * time.Millisecond,
		}
		opt.Builder = NopBuilder{}
		recs, err := core.ExecutionPhase(prof, stubPredictor{}, opt)
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}

	assertBitIdentical := func(label string, recs []ansor.Record) {
		t.Helper()
		if len(recs) != len(inproc) {
			t.Fatalf("%s: %d records, in-process %d", label, len(recs), len(inproc))
		}
		for i, r := range inproc {
			if recs[i].Err != nil {
				t.Fatalf("%s: record %d failed: %v", label, i, recs[i].Err)
			}
			if schedule.Fingerprint(r.Steps) != schedule.Fingerprint(recs[i].Steps) {
				t.Fatalf("%s: record %d: search diverged", label, i)
			}
			got, want := normalized(recs[i].Stats), normalized(r.Stats)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: record %d: stats not bit-identical:\n got %+v\nwant %+v", label, i, got, want)
			}
			if recs[i].Score != r.Score {
				t.Fatalf("%s: record %d: score %v != %v", label, i, recs[i].Score, r.Score)
			}
		}
	}

	// Phase 1: tune through the storm.
	chaotic := tune()
	assertBitIdentical("chaos tune", chaotic)
	if ft.Drops.Load()+ft.Errs.Load()+ft.Truncations.Load() == 0 {
		t.Fatal("the chaos run injected no transport faults — nothing was tested")
	}

	// Clear weather and let the fleet settle. The probe loop has done its
	// job (nodes downed by transport faults came back mid-tune); stop it so
	// the recovery phases below are driven by deterministic probeOnce calls.
	stopProbe()
	probeWG.Wait()
	ft.SetFaults(TransportFaults{})
	for _, sf := range storeFaults {
		if sf != nil {
			sf.Disable()
		}
	}
	waitFor(t, "the fleet to settle after the storm", func() bool {
		rt.probeOnce(context.Background())
		for _, n := range rt.nodes {
			if !n.up.Load() {
				return false
			}
		}
		return true
	})
	// A mid-storm rejoin replay ran over the faulty wire, where a
	// struggling peer's keys are (by design) left behind for later. "Later"
	// is now: force one clean-wire down→up cycle per node, one node at a
	// time, so every key drained to a successor during the storm is back on
	// its owner before the restart phase measures duplicates.
	for i := range rt.nodes {
		rt.nodes[i].markDown(errForcedSweep)
		waitFor(t, "the forced rejoin sweep", func() bool {
			rt.probeOnce(context.Background())
			return rt.nodes[i].up.Load()
		})
	}

	statuszReconciles := func(label string) {
		t.Helper()
		for i, n := range nodes {
			st, err := n.server().Statusz(context.Background())
			if err != nil {
				t.Fatalf("%s: node %d statusz: %v", label, i, err)
			}
			if st.CacheHits+st.CacheMisses+st.CacheCanceled != st.Candidates {
				t.Fatalf("%s: node %d does not reconcile: %d+%d+%d != %d",
					label, i, st.CacheHits, st.CacheMisses, st.CacheCanceled, st.Candidates)
			}
		}
	}
	statuszReconciles("after chaos tune")

	// Phase 2: SIGTERM-style rolling restart of node 0 — drain (router
	// rotates it out on the draining flag), stop, recover from the segment
	// log, rejoin (handoff replays whatever it missed).
	nodes[0].drainStop()
	rt.probeOnce(context.Background())
	if rt.nodes[0].up.Load() {
		t.Fatal("drained node still in rotation")
	}
	nodes[0].start(nil)
	waitFor(t, "node 0 to rejoin after restart", func() bool {
		rt.probeOnce(context.Background())
		return rt.nodes[0].up.Load()
	})

	fleetSimulated := func() uint64 {
		var total uint64
		for _, n := range nodes {
			st, err := n.server().Statusz(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			for _, sh := range st.Shards {
				total += sh.Simulated
			}
		}
		return total
	}

	// Phase 3: recovery re-run on a clean wire. The whole corpus must
	// already be in the fleet — durable recovery plus handoff mean not one
	// candidate is simulated again, anywhere.
	before := fleetSimulated()
	rerun := tune()
	assertBitIdentical("recovery re-run", rerun)
	if after := fleetSimulated(); after != before {
		t.Fatalf("recovery re-run re-simulated %d candidates — the corpus had holes", after-before)
	}
	statuszReconciles("after recovery re-run")

	// Teardown, then the leak check: everything the harness started —
	// router, HTTP servers, stores, pooled connections — must unwind.
	rt.Close()
	for _, n := range nodes {
		n.stop()
		if err := n.server().Close(); err != nil {
			t.Errorf("close %s: %v", n.addr, err)
		}
	}
	inner.CloseIdleConnections()
	if err := sentinel.WaitSettled(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestChaosStoreFaultsAreSurvivable isolates the disk half of the harness:
// a store whose segment appends tear and whose fsyncs fail must keep
// serving — every failed append merely falls back to re-simulation after a
// restart, and a reopened store must recover exactly the records whose
// writes succeeded, skipping torn tails without error.
func TestChaosStoreFaultsAreSurvivable(t *testing.T) {
	dir := t.TempDir()
	faults := NewStoreFaults(chaosSeed, 0.5, 0.5)
	srv := mustServer(t, Config{
		Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2,
		CacheDir: dir, StoreWrapFile: faults.WrapFile,
	})
	req := &SimulateRequest{
		Arch: "riscv", Workload: ConvGroupSpec("tiny", 2),
		Candidates: tinyCandidates(t, 2, 12),
	}
	resp, err := srv.Simulate(context.Background(), req)
	if err != nil {
		t.Fatalf("store faults must never fail a batch: %v", err)
	}
	for i, r := range resp.Results {
		if r.Stats == nil {
			t.Fatalf("candidate %d unserved under store faults: %+v", i, r)
		}
	}
	if faults.Writes.Load() == 0 {
		t.Fatal("no write faults injected — nothing was tested")
	}
	_ = srv.Close() // may report an injected fsync error; the files are what matter

	// Reopen without faults: the store must come back with the surviving
	// records and the server must answer the identical batch, part cache
	// (recovered records), part re-simulation (torn ones) — bit-identical
	// either way.
	restarted := mustServer(t, Config{
		Archs: []isa.Arch{isa.RISCV}, WorkersPerArch: 2, CacheDir: dir,
	})
	defer restarted.Close()
	resp2, err := restarted.Simulate(context.Background(), req)
	if err != nil {
		t.Fatalf("restarted server: %v", err)
	}
	for i := range resp.Results {
		got, want := normalized(resp2.Results[i].Stats), normalized(resp.Results[i].Stats)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("candidate %d: recovery changed the result:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// kill is the permanent-loss path: no drain, no handoff — the HTTP surface
// and the server die mid-flight and the node's disk is destroyed. Nothing of
// the node survives; whatever the fleet still serves of its range comes from
// replicas.
func (n *chaosNode) kill() {
	n.t.Helper()
	n.mu.Lock()
	hsrv, srv := n.hsrv, n.srv
	n.mu.Unlock()
	hsrv.Close() // immediate, not graceful — a crash, not a SIGTERM
	srv.Close()
	if err := os.RemoveAll(n.dir); err != nil {
		n.t.Fatal(err)
	}
}

// TestChaosPermanentNodeLossServesFromReplica is the replication acceptance
// run: a 3-node durable fleet at the default ReplicationFactor (2) tunes a
// corpus, then one node is killed PERMANENTLY — process and disk both gone,
// no drain, no rejoin. The standing invariants:
//
//   - the re-run after the loss is bit-identical to the in-process baseline
//     and simulates NOTHING: the dead node's range is served from the
//     write-through replicas on its successors, at hit rate
//   - anti-entropy then heals the survivors back to ReplicationFactor
//     copies of every key, and converges (a settled round moves zero)
//   - every surviving node's statusz still reconciles
//   - the harness does not leak goroutines
func TestChaosPermanentNodeLossServesFromReplica(t *testing.T) {
	const (
		group  = 1
		trials = 24
		seed   = 5
	)
	sentinel := obs.NewGoroutineSentinel()

	prof := hw.Lookup(isa.RISCV)
	baseOpt := core.ExecutionOptions{
		Scale: te.ScaleTiny, Group: group, Trials: trials, BatchSize: 8,
		NParallel: 4, Seed: seed,
	}
	inproc, err := core.ExecutionPhase(prof, stubPredictor{}, baseOpt)
	if err != nil {
		t.Fatal(err)
	}

	// All three disks honest: the zero-duplicate assertion needs every
	// computed result durably on its replicas before the loss.
	nodes := make([]*chaosNode, 3)
	for i := range nodes {
		nodes[i] = &chaosNode{t: t, dir: t.TempDir()}
		nodes[i].start(nil)
	}
	inner := &http.Transport{}
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = "http://" + n.addr
	}
	rt, err := NewRouter(RouterConfig{
		Nodes: urls, ProbeInterval: -1, AntiEntropyInterval: -1, // both driven manually
		HTTPClient: &http.Client{Transport: inner, Timeout: 30 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}

	tune := func() []ansor.Record {
		opt := baseOpt
		opt.Runner = &ServiceRunner{
			Backend:  rt,
			Arch:     isa.RISCV,
			Workload: ConvGroupSpec(te.ScaleTiny, group),
			NPar:     4,
			Retries:  20, RetryBackoff: 5 * time.Millisecond, RetryBackoffMax: 80 * time.Millisecond,
		}
		opt.Builder = NopBuilder{}
		recs, err := core.ExecutionPhase(prof, stubPredictor{}, opt)
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	assertBitIdentical := func(label string, recs []ansor.Record) {
		t.Helper()
		if len(recs) != len(inproc) {
			t.Fatalf("%s: %d records, in-process %d", label, len(recs), len(inproc))
		}
		for i, r := range inproc {
			if recs[i].Err != nil {
				t.Fatalf("%s: record %d failed: %v", label, i, recs[i].Err)
			}
			if schedule.Fingerprint(r.Steps) != schedule.Fingerprint(recs[i].Steps) {
				t.Fatalf("%s: record %d: search diverged", label, i)
			}
			got, want := normalized(recs[i].Stats), normalized(r.Stats)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: record %d: stats not bit-identical:\n got %+v\nwant %+v", label, i, got, want)
			}
		}
	}

	// Phase 1: tune through the healthy fleet. Write-through replication is
	// on by default, so by the time this returns every fresh result is on
	// its owner AND its ring successor.
	assertBitIdentical("healthy tune", tune())
	if rt.replicaKeys.Load() == 0 {
		t.Fatal("healthy tune replicated nothing — write-through is not running")
	}
	for rt.antiEntropyOnce(context.Background()) != 0 {
	}

	// Phase 2: node 0 dies for good — process and disk. The probe notices;
	// the node never returns.
	nodes[0].kill()
	waitFor(t, "the dead node to leave rotation", func() bool {
		rt.probeOnce(context.Background())
		return !rt.nodes[0].up.Load()
	})

	survivorSimulated := func() uint64 {
		var total uint64
		for _, n := range nodes[1:] {
			st, err := n.server().Statusz(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			for _, sh := range st.Shards {
				total += sh.Simulated
			}
		}
		return total
	}

	// Phase 3: the re-run must not notice the loss — the dead node's range
	// serves from its successors' replicas at hit rate, zero re-simulation.
	before := survivorSimulated()
	assertBitIdentical("re-run after permanent loss", tune())
	if after := survivorSimulated(); after != before {
		t.Fatalf("permanent loss re-simulated %d candidates — replicas had holes", after-before)
	}
	for i, n := range nodes[1:] {
		st, err := n.server().Statusz(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if st.CacheHits+st.CacheMisses+st.CacheCanceled != st.Candidates {
			t.Fatalf("survivor %d does not reconcile: %d+%d+%d != %d",
				i+1, st.CacheHits, st.CacheMisses, st.CacheCanceled, st.Candidates)
		}
	}

	// Phase 4: anti-entropy heals the fleet back to RF copies per key among
	// the survivors — the dead node's replica duty shifted down the ring —
	// and reaches a fixed point.
	healed := 0
	for {
		moved := rt.antiEntropyOnce(context.Background())
		if moved == 0 {
			break
		}
		healed += moved
	}
	if healed == 0 {
		t.Fatal("anti-entropy moved nothing — the dead node's range was not re-replicated")
	}
	if rt.antiEntropyOnce(context.Background()) != 0 {
		t.Fatal("anti-entropy did not hold its fixed point")
	}

	// Both survivors now hold the whole corpus: every key readable on each.
	for i, n := range nodes[1:] {
		keys, err := n.server().Keys(context.Background(), 0, ^uint64(0))
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) != len(inproc) {
			t.Fatalf("survivor %d holds %d keys after healing, want the full corpus %d",
				i+1, len(keys), len(inproc))
		}
	}

	rt.Close()
	for _, n := range nodes[1:] {
		n.stop()
		if err := n.server().Close(); err != nil {
			t.Errorf("close %s: %v", n.addr, err)
		}
	}
	inner.CloseIdleConnections()
	if err := sentinel.WaitSettled(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
}
