package schedule

import (
	"testing"

	"repro/internal/te"
)

func newMatmulSched() *Schedule {
	return New(te.MatMul(8, 8, 8).Op)
}

func TestNewScheduleDefaultOrder(t *testing.T) {
	s := newMatmulSched()
	if len(s.Leaves) != 3 {
		t.Fatalf("leaves = %d", len(s.Leaves))
	}
	// spatial i, j then reduce k
	if s.Leaves[0].Name != "i" || s.Leaves[1].Name != "j" || s.Leaves[2].Name != "k" {
		t.Fatalf("order = %v", s)
	}
	if s.Leaves[2].Kind() != te.Reduce {
		t.Fatal("k must be a reduce loop")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitExact(t *testing.T) {
	s := newMatmulSched()
	outer, inner, err := s.Split(s.Leaves[0], 4)
	if err != nil {
		t.Fatal(err)
	}
	if outer.Extent != 2 || inner.Extent != 4 {
		t.Fatalf("split extents = %d,%d", outer.Extent, inner.Extent)
	}
	if outer.Weight != 4 || inner.Weight != 1 {
		t.Fatalf("split weights = %d,%d", outer.Weight, inner.Weight)
	}
	if len(s.Leaves) != 4 {
		t.Fatalf("leaves after split = %d", len(s.Leaves))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitNonDivisible(t *testing.T) {
	s := New(te.MatMul(10, 8, 8).Op)
	outer, inner, err := s.Split(s.Leaves[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if outer.Extent != 4 || inner.Extent != 3 { // ceil(10/3)=4
		t.Fatalf("split extents = %d,%d", outer.Extent, inner.Extent)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitFactorClamped(t *testing.T) {
	s := newMatmulSched()
	outer, inner, err := s.Split(s.Leaves[0], 100)
	if err != nil {
		t.Fatal(err)
	}
	if outer.Extent != 1 || inner.Extent != 8 {
		t.Fatalf("clamped split = %d,%d", outer.Extent, inner.Extent)
	}
}

func TestSplitErrors(t *testing.T) {
	s := newMatmulSched()
	if _, _, err := s.Split(&IterVar{Name: "ghost", Src: s.Leaves[0].Src}, 2); err == nil {
		t.Fatal("split of foreign itervar must fail")
	}
	if _, _, err := s.Split(s.Leaves[0], 0); err == nil {
		t.Fatal("split factor 0 must fail")
	}
}

func TestNestedSplitWeights(t *testing.T) {
	s := New(te.MatMul(16, 8, 8).Op)
	outer, _, _ := s.Split(s.Leaves[0], 4) // i.o weight 4
	oo, oi, _ := s.Split(outer, 2)         // i.o.o weight 8, i.o.i weight 4
	if oo.Weight != 8 || oi.Weight != 4 {
		t.Fatalf("nested weights = %d,%d", oo.Weight, oi.Weight)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReorder(t *testing.T) {
	s := newMatmulSched()
	i, j, k := s.Leaves[0], s.Leaves[1], s.Leaves[2]
	if err := s.Reorder([]*IterVar{k, i, j}); err != nil {
		t.Fatal(err)
	}
	if s.Leaves[0] != k || s.Leaves[1] != i || s.Leaves[2] != j {
		t.Fatalf("reorder failed: %v", s)
	}
}

func TestReorderErrors(t *testing.T) {
	s := newMatmulSched()
	i, j := s.Leaves[0], s.Leaves[1]
	if err := s.Reorder([]*IterVar{i, j}); err == nil {
		t.Fatal("short reorder must fail")
	}
	if err := s.Reorder([]*IterVar{i, j, j}); err == nil {
		t.Fatal("repeated loop must fail")
	}
	if err := s.Reorder([]*IterVar{i, j, {Name: "ghost", Src: i.Src}}); err == nil {
		t.Fatal("foreign loop must fail")
	}
}

func TestAnnotations(t *testing.T) {
	s := newMatmulSched()
	if err := s.Vectorize(s.Leaves[2]); err != nil {
		t.Fatal(err)
	}
	if s.Leaves[2].Ann != AnnVectorize {
		t.Fatal("annotation not set")
	}
	if err := s.Unroll(s.Leaves[1]); err != nil {
		t.Fatal(err)
	}
	if err := s.Parallel(s.Leaves[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateVectorizeNotInnermost(t *testing.T) {
	s := newMatmulSched()
	if err := s.Vectorize(s.Leaves[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err == nil {
		t.Fatal("vectorize on outer loop must fail validation")
	}
}

func TestReplayReproducesSchedule(t *testing.T) {
	s := newMatmulSched()
	i, j, k := s.Leaves[0], s.Leaves[1], s.Leaves[2]
	_, ji, _ := s.Split(j, 4)
	_ = s.Reorder([]*IterVar{s.Leaves[0], s.Leaves[1], k, ji})
	_ = s.Vectorize(ji)
	_ = i

	s2, err := Replay(te.MatMul(8, 8, 8).Op, s.Steps)
	if err != nil {
		t.Fatal(err)
	}
	if s.String() != s2.String() {
		t.Fatalf("replay mismatch:\n%s\n%s", s, s2)
	}
	if Fingerprint(s.Steps) != Fingerprint(s2.Steps) {
		t.Fatal("fingerprints differ after replay")
	}
}

func TestReplayRejectsBadSteps(t *testing.T) {
	op := te.MatMul(4, 4, 4).Op
	cases := [][]Step{
		{{Kind: "split", Leaf: 99, Factor: 2}},
		{{Kind: "reorder", Perm: []int{0, 1}}},
		{{Kind: "reorder", Perm: []int{0, 1, 99}}},
		{{Kind: "annotate", Leaf: -1, Ann: AnnUnroll}},
		{{Kind: "warp"}},
	}
	for i, steps := range cases {
		if _, err := Replay(op, steps); err == nil {
			t.Fatalf("case %d: bad replay must fail", i)
		}
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	a := []Step{{Kind: "split", Leaf: 0, Factor: 2}}
	b := []Step{{Kind: "split", Leaf: 0, Factor: 4}}
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("fingerprints must differ for different factors")
	}
}

func TestStringRendersAnnotations(t *testing.T) {
	s := newMatmulSched()
	_ = s.Vectorize(s.Leaves[2])
	if got := s.String(); got != "i[8] j[8] k[8]#v" {
		t.Fatalf("render = %q", got)
	}
}
