// Package schedule implements the scheduling layer of the reproduction: the
// analogue of TVM schedules (Listing 2 of the paper). A Schedule owns an
// ordered list of loop IterVars derived from a ComputeOp's axes and supports
// the transformation primitives the paper's search spaces use: split,
// reorder, unroll, vectorize, parallel.
//
// Every mutation is recorded as a replayable Step so that a schedule (an
// "implementation" in the paper's terminology) can be serialized, hashed for
// deduplication, mutated by the evolutionary search, and rebuilt against a
// fresh ComputeOp instance for concurrent simulation.
package schedule

import (
	"fmt"
	"strings"

	"repro/internal/te"
)

// Annotation marks how a loop level is realized by the code generator.
type Annotation int

// Loop annotations.
const (
	// AnnNone is a plain sequential loop.
	AnnNone Annotation = iota
	// AnnUnroll fully unrolls the loop (body replicated, loop overhead gone,
	// code footprint multiplied).
	AnnUnroll
	// AnnVectorize maps the loop onto SIMD lanes of the target ISA. On
	// targets without vectors (the paper's SiFive U74) it degrades to a
	// plain loop.
	AnnVectorize
	// AnnParallel marks the loop as parallelizable. The paper's setup is
	// single-core ("Our focus is on single-core workloads", §III-B), so
	// codegen treats it as sequential, but the annotation is kept for API
	// fidelity with TVM.
	AnnParallel
)

func (a Annotation) String() string {
	switch a {
	case AnnNone:
		return "none"
	case AnnUnroll:
		return "unroll"
	case AnnVectorize:
		return "vectorize"
	case AnnParallel:
		return "parallel"
	}
	return "?"
}

// IterVar is one loop of the schedule. Splitting an axis produces IterVars
// whose Weight encodes their contribution to the original axis value:
// axisValue = Σ_leaves Weight·leafValue.
type IterVar struct {
	Name   string
	Extent int
	Src    *te.Axis // original compute axis this loop contributes to
	Weight int      // multiplier of this loop's value in the axis value
	Ann    Annotation
}

// Kind returns the axis kind (spatial/reduce) of the underlying axis.
func (iv *IterVar) Kind() te.AxisKind { return iv.Src.Kind }

func (iv *IterVar) String() string {
	return fmt.Sprintf("%s[%d]%s", iv.Name, iv.Extent, annSuffix(iv.Ann))
}

func annSuffix(a Annotation) string {
	switch a {
	case AnnUnroll:
		return "#u"
	case AnnVectorize:
		return "#v"
	case AnnParallel:
		return "#p"
	}
	return ""
}

// Step is one recorded schedule transformation, replayable on a fresh
// schedule of the same op.
type Step struct {
	// Kind is "split", "reorder", or "annotate".
	Kind string
	// Leaf is the index of the target leaf at application time (split,
	// annotate).
	Leaf int
	// Factor is the split inner extent.
	Factor int
	// Perm is the leaf permutation (reorder).
	Perm []int
	// Ann is the annotation value (annotate).
	Ann Annotation
}

// Schedule is an ordered loop nest over a ComputeOp plus the step log that
// produced it.
type Schedule struct {
	Op     *te.ComputeOp
	Leaves []*IterVar
	Steps  []Step
}

// New creates the default schedule: one loop per axis, spatial axes
// outermost, in compute-definition order (TVM's create_schedule).
func New(op *te.ComputeOp) *Schedule {
	s := &Schedule{Op: op}
	for _, ax := range op.AllAxes() {
		s.Leaves = append(s.Leaves, &IterVar{Name: ax.Name, Extent: ax.Extent, Src: ax, Weight: 1})
	}
	return s
}

// LeafIndex returns the position of iv in the current loop order, or -1.
func (s *Schedule) LeafIndex(iv *IterVar) int {
	for i, l := range s.Leaves {
		if l == iv {
			return i
		}
	}
	return -1
}

// Split divides a loop into outer×inner with the given inner extent. When
// factor does not divide the extent the outer loop rounds up and lowering
// emits a boundary guard. It returns the new (outer, inner) loops, replacing
// iv in place.
func (s *Schedule) Split(iv *IterVar, factor int) (*IterVar, *IterVar, error) {
	idx := s.LeafIndex(iv)
	if idx < 0 {
		return nil, nil, fmt.Errorf("schedule: split target %s not in schedule", iv.Name)
	}
	if factor <= 0 {
		return nil, nil, fmt.Errorf("schedule: split factor %d must be positive", factor)
	}
	if factor > iv.Extent {
		factor = iv.Extent
	}
	outerExt := (iv.Extent + factor - 1) / factor
	outer := &IterVar{
		Name: iv.Name + ".o", Extent: outerExt,
		Src: iv.Src, Weight: iv.Weight * factor,
	}
	inner := &IterVar{
		Name: iv.Name + ".i", Extent: factor,
		Src: iv.Src, Weight: iv.Weight,
	}
	repl := make([]*IterVar, 0, len(s.Leaves)+1)
	repl = append(repl, s.Leaves[:idx]...)
	repl = append(repl, outer, inner)
	repl = append(repl, s.Leaves[idx+1:]...)
	s.Leaves = repl
	s.Steps = append(s.Steps, Step{Kind: "split", Leaf: idx, Factor: factor})
	return outer, inner, nil
}

// Reorder rearranges the loops to the given order, which must be a
// permutation of the current leaves.
func (s *Schedule) Reorder(order []*IterVar) error {
	if len(order) != len(s.Leaves) {
		return fmt.Errorf("schedule: reorder with %d loops, schedule has %d", len(order), len(s.Leaves))
	}
	perm := make([]int, len(order))
	seen := make([]bool, len(s.Leaves))
	for i, iv := range order {
		idx := s.LeafIndex(iv)
		if idx < 0 {
			return fmt.Errorf("schedule: reorder target %s not in schedule", iv.Name)
		}
		if seen[idx] {
			return fmt.Errorf("schedule: reorder repeats loop %s", iv.Name)
		}
		seen[idx] = true
		perm[i] = idx
	}
	s.Leaves = append([]*IterVar(nil), order...)
	s.Steps = append(s.Steps, Step{Kind: "reorder", Perm: perm})
	return nil
}

// Annotate sets the loop annotation (unroll/vectorize/parallel).
func (s *Schedule) Annotate(iv *IterVar, ann Annotation) error {
	idx := s.LeafIndex(iv)
	if idx < 0 {
		return fmt.Errorf("schedule: annotate target %s not in schedule", iv.Name)
	}
	iv.Ann = ann
	s.Steps = append(s.Steps, Step{Kind: "annotate", Leaf: idx, Ann: ann})
	return nil
}

// Unroll marks the loop for full unrolling.
func (s *Schedule) Unroll(iv *IterVar) error { return s.Annotate(iv, AnnUnroll) }

// Vectorize marks the loop for SIMD execution.
func (s *Schedule) Vectorize(iv *IterVar) error { return s.Annotate(iv, AnnVectorize) }

// Parallel marks the loop as parallel (kept for TVM API fidelity; single-core
// codegen runs it sequentially).
func (s *Schedule) Parallel(iv *IterVar) error { return s.Annotate(iv, AnnParallel) }

// Replay applies a recorded step log to a fresh schedule of op.
func Replay(op *te.ComputeOp, steps []Step) (*Schedule, error) {
	s := New(op)
	for i, st := range steps {
		switch st.Kind {
		case "split":
			if st.Leaf < 0 || st.Leaf >= len(s.Leaves) {
				return nil, fmt.Errorf("schedule: replay step %d: leaf %d out of range", i, st.Leaf)
			}
			if _, _, err := s.Split(s.Leaves[st.Leaf], st.Factor); err != nil {
				return nil, fmt.Errorf("schedule: replay step %d: %w", i, err)
			}
		case "reorder":
			if len(st.Perm) != len(s.Leaves) {
				return nil, fmt.Errorf("schedule: replay step %d: perm len %d vs %d leaves", i, len(st.Perm), len(s.Leaves))
			}
			order := make([]*IterVar, len(st.Perm))
			for j, idx := range st.Perm {
				if idx < 0 || idx >= len(s.Leaves) {
					return nil, fmt.Errorf("schedule: replay step %d: perm index %d out of range", i, idx)
				}
				order[j] = s.Leaves[idx]
			}
			if err := s.Reorder(order); err != nil {
				return nil, fmt.Errorf("schedule: replay step %d: %w", i, err)
			}
		case "annotate":
			if st.Leaf < 0 || st.Leaf >= len(s.Leaves) {
				return nil, fmt.Errorf("schedule: replay step %d: leaf %d out of range", i, st.Leaf)
			}
			if err := s.Annotate(s.Leaves[st.Leaf], st.Ann); err != nil {
				return nil, fmt.Errorf("schedule: replay step %d: %w", i, err)
			}
		default:
			return nil, fmt.Errorf("schedule: replay step %d: unknown kind %q", i, st.Kind)
		}
	}
	return s, nil
}

// Fingerprint returns a stable string identifying the transformation
// sequence, used for deduplicating candidate implementations.
func Fingerprint(steps []Step) string {
	var b strings.Builder
	for _, st := range steps {
		switch st.Kind {
		case "split":
			fmt.Fprintf(&b, "S%d:%d;", st.Leaf, st.Factor)
		case "reorder":
			b.WriteString("R")
			for _, p := range st.Perm {
				fmt.Fprintf(&b, "%d,", p)
			}
			b.WriteString(";")
		case "annotate":
			fmt.Fprintf(&b, "A%d:%d;", st.Leaf, st.Ann)
		}
	}
	return b.String()
}

// String renders the loop order, e.g. "co.o[4] oh[7] ow[7] ci[8] co.i[16]#v".
func (s *Schedule) String() string {
	parts := make([]string, len(s.Leaves))
	for i, l := range s.Leaves {
		parts[i] = l.String()
	}
	return strings.Join(parts, " ")
}

// Validate checks schedule invariants: weights/extents cover each axis
// exactly and at most one loop is vectorized (the innermost).
func (s *Schedule) Validate() error {
	// Per-axis: the maximum representable value must cover extent-1 and the
	// product of leaf extents must be ≥ the axis extent.
	perAxis := map[*te.Axis][]*IterVar{}
	for _, l := range s.Leaves {
		perAxis[l.Src] = append(perAxis[l.Src], l)
	}
	for _, ax := range s.Op.AllAxes() {
		leaves := perAxis[ax]
		if len(leaves) == 0 {
			return fmt.Errorf("schedule: axis %s has no loops", ax.Name)
		}
		prod := 1
		maxVal := 0
		for _, l := range leaves {
			prod *= l.Extent
			maxVal += (l.Extent - 1) * l.Weight
		}
		if prod < ax.Extent {
			return fmt.Errorf("schedule: axis %s loops cover %d < extent %d", ax.Name, prod, ax.Extent)
		}
		if maxVal < ax.Extent-1 {
			return fmt.Errorf("schedule: axis %s max value %d < extent-1 %d", ax.Name, maxVal, ax.Extent-1)
		}
	}
	nVec := 0
	for i, l := range s.Leaves {
		if l.Ann == AnnVectorize {
			nVec++
			if i != len(s.Leaves)-1 {
				return fmt.Errorf("schedule: vectorized loop %s is not innermost", l.Name)
			}
		}
	}
	if nVec > 1 {
		return fmt.Errorf("schedule: %d vectorized loops, at most 1 allowed", nVec)
	}
	return nil
}
