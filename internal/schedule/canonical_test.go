package schedule

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"repro/internal/te"
)

// TestCanonicalGoldenHashes pins the canonical encoding byte for byte: the
// sha256 of Canonical(log) must match hashes recorded when the v1 format was
// defined. These constants are the cross-process stability guarantee behind
// the simulate service's content-addressed cache keys — if this test fails,
// the format changed and canonicalVersion must be bumped (which rewrites the
// goldens deliberately instead of silently corrupting persisted caches).
func TestCanonicalGoldenHashes(t *testing.T) {
	golden := []struct {
		name  string
		steps []Step
		hash  string
	}{
		{"empty", nil,
			"47dc540c94ceb704a23875c11273e16bb0b8a87aed84de911f2133568115f254"},
		{"split", []Step{{Kind: "split", Leaf: 0, Factor: 4}},
			"8ae851f5123d07361fc01bc065372108122732042587f250f4b98392bbc62c8f"},
		{"typical", []Step{
			{Kind: "split", Leaf: 1, Factor: 8},
			{Kind: "split", Leaf: 2, Factor: 2},
			{Kind: "reorder", Perm: []int{0, 2, 4, 1, 3, 5}},
			{Kind: "annotate", Leaf: 5, Ann: AnnVectorize},
		},
			"3802762a1c18e5c9e8598572d98e97354e176eba493273ed3a7c17fe6865ea4e"},
		{"annotate-unroll", []Step{{Kind: "annotate", Leaf: 3, Ann: AnnUnroll}},
			"8579ac01503e46741d1af018182669e728bf7c4a51f585e23937b52e6895a797"},
	}
	for _, g := range golden {
		sum := sha256.Sum256(Canonical(g.steps))
		if got := hex.EncodeToString(sum[:]); got != g.hash {
			t.Errorf("%s: canonical hash %s, want golden %s", g.name, got, g.hash)
		}
	}
}

// TestCanonicalDistinct checks that structurally different logs never share
// an encoding, including the field-boundary aliases a naive concatenation
// would produce.
func TestCanonicalDistinct(t *testing.T) {
	logs := [][]Step{
		nil,
		{{Kind: "split", Leaf: 0, Factor: 4}},
		{{Kind: "split", Leaf: 4, Factor: 0}},
		{{Kind: "split", Leaf: 0, Factor: 4}, {Kind: "split", Leaf: 0, Factor: 4}},
		{{Kind: "split", Leaf: 1, Factor: 4}},
		{{Kind: "annotate", Leaf: 0, Ann: AnnUnroll}},
		{{Kind: "annotate", Leaf: 0, Ann: AnnVectorize}},
		{{Kind: "reorder", Perm: []int{0, 1}}},
		{{Kind: "reorder", Perm: []int{1, 0}}},
		{{Kind: "reorder", Perm: []int{1}}, {Kind: "reorder", Perm: []int{0}}},
		{{Kind: "future-step", Leaf: 0, Factor: 4}},
	}
	seen := map[string]int{}
	for i, steps := range logs {
		enc := string(Canonical(steps))
		if j, dup := seen[enc]; dup {
			t.Errorf("logs %d and %d share one canonical encoding", i, j)
		}
		seen[enc] = i
	}
}

// TestAppendCanonicalMatchesCanonical checks the append form is the same
// bytes after an arbitrary prefix.
func TestAppendCanonicalMatchesCanonical(t *testing.T) {
	steps := []Step{
		{Kind: "split", Leaf: 2, Factor: 16},
		{Kind: "reorder", Perm: []int{2, 0, 1}},
	}
	got := AppendCanonical([]byte("prefix"), steps)
	want := append([]byte("prefix"), Canonical(steps)...)
	if !bytes.Equal(got, want) {
		t.Fatalf("AppendCanonical = %x, want %x", got, want)
	}
}

// TestCanonicalReplayedSchedule encodes a step log produced by real schedule
// mutations (not hand-written literals) and checks replay-then-encode is
// stable — the exact path the service takes server-side.
func TestCanonicalReplayedSchedule(t *testing.T) {
	op := te.MatMul(8, 8, 8).Op
	s := New(op)
	if _, _, err := s.Split(s.Leaves[0], 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Vectorize(s.Leaves[len(s.Leaves)-1]); err != nil {
		t.Fatal(err)
	}
	enc := Canonical(s.Steps)
	r, err := Replay(op, s.Steps)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, Canonical(r.Steps)) {
		t.Fatal("canonical encoding changed across Replay")
	}
}
