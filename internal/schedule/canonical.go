package schedule

import "encoding/binary"

// canonicalVersion is the format version prefixed to every canonical
// encoding. Bump it whenever the byte layout below changes: the version byte
// flows into every content-addressed cache key, so a bump invalidates stale
// caches instead of silently aliasing old and new encodings.
const canonicalVersion = 1

// Canonical returns a stable, self-delimiting binary encoding of a step log.
// Unlike Fingerprint (a human-readable dedup string), the canonical form is
// specified byte for byte and guaranteed stable across processes, platforms
// and releases of the same version, so it can feed content-addressed result
// caches (the simulate service hashes it into its cache key).
//
// Layout: version byte, uvarint step count, then per step a kind tag byte
// (1 split, 2 reorder, 3 annotate; 0 escapes unknown kinds as a length-prefixed
// kind string) followed by the step's fields as varints (signed, so negative
// values that would fail Replay still encode unambiguously).
func Canonical(steps []Step) []byte {
	return AppendCanonical(make([]byte, 0, 2+8*len(steps)), steps)
}

// AppendCanonical appends the canonical encoding of steps to dst and returns
// the extended slice (append-style, for callers that hash several fields).
func AppendCanonical(dst []byte, steps []Step) []byte {
	dst = append(dst, canonicalVersion)
	dst = binary.AppendUvarint(dst, uint64(len(steps)))
	for _, st := range steps {
		switch st.Kind {
		case "split":
			dst = append(dst, 1)
			dst = binary.AppendVarint(dst, int64(st.Leaf))
			dst = binary.AppendVarint(dst, int64(st.Factor))
		case "reorder":
			dst = append(dst, 2)
			dst = binary.AppendUvarint(dst, uint64(len(st.Perm)))
			for _, p := range st.Perm {
				dst = binary.AppendVarint(dst, int64(p))
			}
		case "annotate":
			dst = append(dst, 3)
			dst = binary.AppendVarint(dst, int64(st.Leaf))
			dst = binary.AppendVarint(dst, int64(st.Ann))
		default:
			// Unknown kinds (future step types) encode every field so two
			// distinct steps can never alias.
			dst = append(dst, 0)
			dst = binary.AppendUvarint(dst, uint64(len(st.Kind)))
			dst = append(dst, st.Kind...)
			dst = binary.AppendVarint(dst, int64(st.Leaf))
			dst = binary.AppendVarint(dst, int64(st.Factor))
			dst = binary.AppendUvarint(dst, uint64(len(st.Perm)))
			for _, p := range st.Perm {
				dst = binary.AppendVarint(dst, int64(p))
			}
			dst = binary.AppendVarint(dst, int64(st.Ann))
		}
	}
	return dst
}
