package runner

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/lower"
	"repro/internal/num"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/te"
)

func matmulFactory() *te.Workload { return te.MatMul(8, 8, 8) }

func defaultInput() MeasureInput {
	return MeasureInput{Factory: matmulFactory, Steps: nil}
}

func splitInput(factor int) MeasureInput {
	wl := te.MatMul(8, 8, 8)
	s := schedule.New(wl.Op)
	_, _, _ = s.Split(s.Leaves[2], factor)
	return MeasureInput{Factory: matmulFactory, Steps: s.Steps}
}

func TestLocalBuilderBuilds(t *testing.T) {
	b := LocalBuilder{Arch: isa.X86}
	res := b.Build([]MeasureInput{defaultInput(), splitInput(4)})
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("build %d: %v", i, r.Err)
		}
		if r.Prog == nil {
			t.Fatalf("build %d: nil program", i)
		}
	}
}

func TestLocalBuilderReportsBadSteps(t *testing.T) {
	b := LocalBuilder{Arch: isa.X86}
	bad := MeasureInput{Factory: matmulFactory,
		Steps: []schedule.Step{{Kind: "split", Leaf: 99, Factor: 2}}}
	res := b.Build([]MeasureInput{bad, defaultInput()})
	if res[0].Err == nil {
		t.Fatal("bad steps must fail the build")
	}
	if res[1].Err != nil {
		t.Fatal("good candidate must still build")
	}
}

func TestLocalRunnerMeasures(t *testing.T) {
	prof := hw.Lookup(isa.RISCV)
	b := LocalBuilder{Arch: isa.RISCV}
	inputs := []MeasureInput{defaultInput(), splitInput(4)}
	builds := b.Build(inputs)
	r := NewLocalRunner(prof, hw.DefaultMeasureOptions(), num.NewRNG(1))
	if r.NParallel() != 1 {
		t.Fatal("native hardware must be sequential")
	}
	res := r.Run(inputs, builds)
	for i, m := range res {
		if m.Err != nil {
			t.Fatalf("measure %d: %v", i, m.Err)
		}
		if m.TimeSec <= 0 || m.Score != m.TimeSec {
			t.Fatalf("measure %d: bad time/score %+v", i, m)
		}
	}
	// Wall clock must include 2 candidates × 15 reps × 1 s cooldown.
	if r.WallClockSec() < 30 {
		t.Fatalf("wall clock %v must include cooldowns", r.WallClockSec())
	}
}

func TestLocalRunnerPropagatesBuildErrors(t *testing.T) {
	prof := hw.Lookup(isa.ARM)
	r := NewLocalRunner(prof, hw.DefaultMeasureOptions(), num.NewRNG(1))
	res := r.Run([]MeasureInput{defaultInput()}, []BuildResult{{Err: errors.New("boom")}})
	if res[0].Err == nil || !math.IsInf(res[0].Score, 1) {
		t.Fatalf("build error must poison the score: %+v", res[0])
	}
}

func TestSimulatorRunnerCollectsStats(t *testing.T) {
	b := LocalBuilder{Arch: isa.ARM}
	inputs := []MeasureInput{defaultInput(), splitInput(2), splitInput(4)}
	builds := b.Build(inputs)
	r := NewSimulatorRunner(hw.Lookup(isa.ARM).Caches, 3, nil)
	if r.NParallel() != 3 {
		t.Fatal("n_parallel not respected")
	}
	res := r.Run(inputs, builds)
	for i, m := range res {
		if m.Err != nil {
			t.Fatalf("sim %d: %v", i, m.Err)
		}
		if m.Stats == nil || m.Stats.Total == 0 {
			t.Fatalf("sim %d: missing stats", i)
		}
		if m.Score != 0 {
			t.Fatalf("nil scorer must leave score 0, got %v", m.Score)
		}
	}
}

type fixedScorer struct{ calls int32 }

func (f *fixedScorer) Score(st *sim.Stats) float64 {
	atomic.AddInt32(&f.calls, 1)
	return float64(st.Total)
}

func TestSimulatorRunnerScores(t *testing.T) {
	b := LocalBuilder{Arch: isa.X86}
	inputs := []MeasureInput{defaultInput(), splitInput(4)}
	builds := b.Build(inputs)
	sc := &fixedScorer{}
	r := NewSimulatorRunner(hw.Lookup(isa.X86).Caches, 2, sc)
	res := r.Run(inputs, builds)
	if n := atomic.LoadInt32(&sc.calls); n != 2 {
		t.Fatalf("scorer called %d times want 2", n)
	}
	for _, m := range res {
		if m.Score <= 0 {
			t.Fatalf("score missing: %+v", m)
		}
	}
}

func TestSimulatorRunnerParallelMatchesSequential(t *testing.T) {
	b := LocalBuilder{Arch: isa.RISCV}
	var inputs []MeasureInput
	for f := 1; f <= 8; f++ {
		inputs = append(inputs, splitInput(f))
	}
	builds := b.Build(inputs)
	seq := NewSimulatorRunner(hw.Lookup(isa.RISCV).Caches, 1, nil).Run(inputs, builds)
	par := NewSimulatorRunner(hw.Lookup(isa.RISCV).Caches, 8, nil).Run(inputs, builds)
	for i := range seq {
		if seq[i].Stats.Total != par[i].Stats.Total {
			t.Fatalf("candidate %d: parallel stats diverge", i)
		}
	}
}

func TestRegistryOverrideSemantics(t *testing.T) {
	defer UnregisterFunc("test.fn")
	fn := func(p *lower.Program) (*sim.Stats, error) { return &sim.Stats{Total: 42}, nil }
	if err := RegisterFunc("test.fn", fn, false); err != nil {
		t.Fatal(err)
	}
	if err := RegisterFunc("test.fn", fn, false); err == nil {
		t.Fatal("re-registration without override must fail")
	}
	if err := RegisterFunc("test.fn", fn, true); err != nil {
		t.Fatalf("override must succeed: %v", err)
	}
	got, ok := LookupFunc("test.fn")
	if !ok {
		t.Fatal("lookup failed")
	}
	st, _ := got(nil)
	if st.Total != 42 {
		t.Fatal("wrong function resolved")
	}
}

func TestSimulatorRunnerUsesRegistryOverride(t *testing.T) {
	defer UnregisterFunc(SimulatorRunKey)
	marker := &sim.Stats{Total: 7777}
	err := RegisterFunc(SimulatorRunKey, func(p *lower.Program) (*sim.Stats, error) {
		return marker, nil
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	b := LocalBuilder{Arch: isa.X86}
	inputs := []MeasureInput{defaultInput()}
	builds := b.Build(inputs)
	res := NewSimulatorRunner(hw.Lookup(isa.X86).Caches, 1, nil).Run(inputs, builds)
	if res[0].Stats.Total != 7777 {
		t.Fatal("registry override was not used (Listing 4 semantics broken)")
	}
}

func TestRunParallelCoversAll(t *testing.T) {
	var mask [100]int32
	runParallel(7, 100, func(i int) { atomic.AddInt32(&mask[i], 1) })
	for i, v := range mask {
		if v != 1 {
			t.Fatalf("index %d executed %d times", i, v)
		}
	}
	runParallel(0, 0, func(int) {}) // degenerate: no panic
}

func TestParallelCtxCoversAllWhenNotCanceled(t *testing.T) {
	var mask [50]int32
	if err := ParallelCtx(context.Background(), 4, 50, func(i int) {
		atomic.AddInt32(&mask[i], 1)
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range mask {
		if v != 1 {
			t.Fatalf("index %d executed %d times", i, v)
		}
	}
	if err := ParallelCtx(nil, 2, 3, func(int) {}); err != nil {
		t.Fatalf("nil ctx must behave like Parallel: %v", err)
	}
}

func TestParallelCtxStopsDispatchOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started int32
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- ParallelCtx(ctx, 2, 1000, func(i int) {
			atomic.AddInt32(&started, 1)
			<-release
		})
	}()
	// Wait until both workers hold an index, then cancel: no further
	// indices may be dispatched and the call must return ctx.Err() after
	// the in-flight ones finish.
	for atomic.LoadInt32(&started) < 2 {
		runtime.Gosched()
	}
	cancel()
	close(release)
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// 2 workers were in flight; at most a few more could have been queued
	// in the dispatch channel before cancel won the select.
	if n := atomic.LoadInt32(&started); n > 5 {
		t.Fatalf("%d indices dispatched after cancel", n)
	}
}
