package runner

import (
	"errors"
	"math"
	"sync"

	"repro/internal/hw"
	"repro/internal/num"
)

// LocalRunner plays the role of native execution on the target hardware
// (Fig. 2): candidates run sequentially (the paper never parallelizes on
// real boards because it would disturb the measurements), each repeated
// N_exe times with cooldowns, and the median becomes both the score and the
// reported run time.
type LocalRunner struct {
	Prof    hw.Profile
	Opt     hw.MeasureOptions
	rng     *num.RNG
	mu      sync.Mutex
	wallSec float64
}

// NewLocalRunner builds a native runner for one target with the paper's
// measurement options.
func NewLocalRunner(prof hw.Profile, opt hw.MeasureOptions, rng *num.RNG) *LocalRunner {
	return &LocalRunner{Prof: prof, Opt: opt, rng: rng}
}

// Name implements Runner.
func (r *LocalRunner) Name() string { return "local[" + string(r.Prof.Arch) + "]" }

// NParallel implements Runner: real hardware measures one candidate at a
// time.
func (r *LocalRunner) NParallel() int { return 1 }

// Run implements Runner.
func (r *LocalRunner) Run(inputs []MeasureInput, builds []BuildResult) []MeasureResult {
	out := make([]MeasureResult, len(builds))
	for i, b := range builds {
		if b.Err != nil {
			out[i] = MeasureResult{Err: b.Err, Score: math.Inf(1)}
			continue
		}
		m, err := hw.Measure(b.Prog, r.Prof, r.Opt, r.rng.Split())
		if err != nil {
			out[i] = MeasureResult{Err: err, Score: math.Inf(1)}
			continue
		}
		r.mu.Lock()
		r.wallSec += m.ElapsedSec
		r.mu.Unlock()
		out[i] = MeasureResult{Score: m.TrefSec, TimeSec: m.TrefSec,
			TrueTimeSec: m.TrueSec, ElapsedSec: m.ElapsedSec}
	}
	return out
}

// WallClockSec reports the accumulated (modelled) wall-clock cost of all
// native measurements so far, including cooldowns — the quantity Eq. (4)
// compares against simulator throughput.
func (r *LocalRunner) WallClockSec() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.wallSec
}

// ErrBuildFailed marks candidates that never ran.
var ErrBuildFailed = errors.New("runner: build failed")
