package runner

import (
	"math"

	"repro/internal/cache"
	"repro/internal/features"
	"repro/internal/predictor"
	"repro/internal/sim"
)

// Scorer converts instruction-accurate simulator statistics into a tuner
// score (Contribution II plugs the trained predictor in here; during the
// training phase a nil scorer collects statistics only).
type Scorer interface {
	Score(st *sim.Stats) float64
}

// PredictorScorer scores statistics with a trained predictor over windowed
// group-normalized features (§III-E): every scored sample is first fed to
// the window normalizer, matching the batch-wise arrival of candidates from
// the auto-scheduler.
type PredictorScorer struct {
	Pred predictor.Predictor
	Norm features.Normalizer
}

// Score implements Scorer. It must be called in candidate order (the
// SimulatorRunner scores sequentially after the parallel simulations
// finish), keeping dynamic-window results deterministic.
func (p *PredictorScorer) Score(st *sim.Stats) float64 {
	s := features.FromStats(st)
	p.Norm.Observe(s)
	return p.Pred.Predict(p.Norm.Vector(s))
}

// ScorerSetter is implemented by runners whose scoring the execution phase
// configures after construction: core.ExecutionPhase builds the windowed
// predictor scorer and injects it into whichever backend (in-process
// SimulatorRunner or remote ServiceRunner) the options selected.
type ScorerSetter interface {
	SetScorer(Scorer)
}

// SimulatorRunner is the paper's SimulatorRunner (Listing 3): it executes
// candidates on NPar parallel instruction-accurate simulator instances
// instead of the target hardware and returns scores.
type SimulatorRunner struct {
	// Caches is the simulated cache geometry (Table I of the target).
	Caches cache.HierarchyConfig
	// NPar is n_parallel: how many simulator instances run concurrently.
	NPar int
	// Scorer converts statistics to scores; nil leaves Score = 0
	// (statistics-only mode used during predictor training).
	Scorer Scorer
}

// NewSimulatorRunner creates a simulator runner with n_parallel instances.
func NewSimulatorRunner(caches cache.HierarchyConfig, nParallel int, scorer Scorer) *SimulatorRunner {
	if nParallel < 1 {
		nParallel = 1
	}
	return &SimulatorRunner{Caches: caches, NPar: nParallel, Scorer: scorer}
}

// Name implements Runner.
func (r *SimulatorRunner) Name() string { return "simulator" }

// SetScorer implements ScorerSetter.
func (r *SimulatorRunner) SetScorer(s Scorer) { r.Scorer = s }

// NParallel implements Runner.
func (r *SimulatorRunner) NParallel() int { return r.NPar }

// Run implements Runner: candidates are simulated concurrently (each on its
// own simulator instance, as in the paper's interface), then scored
// sequentially in input order so window-based normalizers stay
// deterministic. The simulator execution itself goes through the function
// registry so users can override the backend, mirroring Listing 4. The
// default backend draws machines from the sim package's per-configuration
// pool (sim.Acquire/sim.Release inside sim.Run), so a tuning run re-uses
// n_parallel cache hierarchies via Reset() instead of allocating one per
// candidate.
func (r *SimulatorRunner) Run(inputs []MeasureInput, builds []BuildResult) []MeasureResult {
	out := make([]MeasureResult, len(builds))
	exec := func(b BuildResult) (*sim.Stats, error) {
		if fn, ok := LookupFunc(SimulatorRunKey); ok {
			return fn(b.Prog)
		}
		return sim.Run(b.Prog, r.Caches)
	}
	runParallel(r.NPar, len(builds), func(i int) {
		if builds[i].Err != nil {
			out[i] = MeasureResult{Err: builds[i].Err, Score: math.Inf(1)}
			return
		}
		st, err := exec(builds[i])
		if err != nil {
			out[i] = MeasureResult{Err: err, Score: math.Inf(1)}
			return
		}
		out[i] = MeasureResult{Stats: st}
	})
	if r.Scorer != nil {
		for i := range out {
			if out[i].Err == nil && out[i].Stats != nil {
				out[i].Score = r.Scorer.Score(out[i].Stats)
			}
		}
	}
	return out
}
