package runner

import (
	"fmt"
	"sync"

	"repro/internal/lower"
	"repro/internal/sim"
)

// SimRunFunc executes one built program on a simulator and returns its
// statistics — the Go analogue of the paper's simulator_run function that
// "serves as a simulator interface and can be overwritten to use a simulator
// for execution" (§III-A).
type SimRunFunc func(p *lower.Program) (*sim.Stats, error)

// SimulatorRunKey is the registry name of the simulator-execution hook, the
// analogue of TVM's auto_scheduler.local_runner.run registry entry that
// Listing 4 overrides.
const SimulatorRunKey = "simtune.simulator_run"

// funcRegistry mirrors TVM's global function registry
// (tvm._ffi.register_func with override semantics, Listing 4).
type funcRegistry struct {
	mu  sync.RWMutex
	fns map[string]SimRunFunc
}

var globalRegistry = &funcRegistry{fns: map[string]SimRunFunc{}}

// RegisterFunc installs fn under name. Registering an existing name requires
// override=true, exactly like tvm._ffi.register_func(..., override=True).
func RegisterFunc(name string, fn SimRunFunc, override bool) error {
	globalRegistry.mu.Lock()
	defer globalRegistry.mu.Unlock()
	if _, exists := globalRegistry.fns[name]; exists && !override {
		return fmt.Errorf("runner: function %q already registered (use override)", name)
	}
	globalRegistry.fns[name] = fn
	return nil
}

// LookupFunc retrieves a registered function.
func LookupFunc(name string) (SimRunFunc, bool) {
	globalRegistry.mu.RLock()
	defer globalRegistry.mu.RUnlock()
	fn, ok := globalRegistry.fns[name]
	return fn, ok
}

// UnregisterFunc removes a registration (used by tests).
func UnregisterFunc(name string) {
	globalRegistry.mu.Lock()
	defer globalRegistry.mu.Unlock()
	delete(globalRegistry.fns, name)
}
