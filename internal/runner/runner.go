// Package runner implements Contribution I of the paper: the builder/runner
// architecture that lets autotuning workloads execute either natively on the
// target hardware or on parallel simulator instances (§III-A, Fig. 1-I).
//
// TVM's autotuning requires a builder (compiles the candidate schedule into
// an executable) and a runner (executes it and reports a score). This
// package provides both: LocalBuilder lowers schedule transform steps into
// executable Programs, LocalRunner plays the role of native execution on the
// target board (timing model + Nexe/cooldown measurement methodology), and
// SimulatorRunner reproduces the paper's SimulatorRunner (Listing 3): it
// executes n_parallel instruction-accurate simulator instances concurrently
// and converts their statistics into scores through a pluggable Scorer.
//
// The Runner/Builder interfaces are the seam every execution backend plugs
// into: candidates travel as (WorkloadFactory, schedule steps) pairs in
// MeasureInput, builders turn them into BuildResults, and runners return
// index-aligned MeasureResults (stats, score, cache-hit provenance). The
// service package's ServiceRunner implements the same pair over a remote
// simulate fleet, which is why tuners cannot tell local simulators from a
// shared service. ParallelCtx is the shared cancellable fan-out primitive
// used by both the local runners and the service's batch executor.
package runner

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/isa"
	"repro/internal/lower"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/te"
)

// WorkloadFactory creates a fresh workload instance (fresh tensors) so that
// concurrent builds and simulations never share mutable state.
type WorkloadFactory func() *te.Workload

// MeasureInput identifies one candidate implementation: a workload plus the
// schedule transform steps that define it (TVM's MeasureInput analogue).
type MeasureInput struct {
	Factory WorkloadFactory
	Steps   []schedule.Step
}

// BuildResult is the outcome of compiling one candidate.
type BuildResult struct {
	Prog *lower.Program
	Err  error
}

// MeasureResult is the outcome of running one candidate. Score is the
// quantity tuners minimize; TimeSec is a measured run time when the runner
// executes "natively"; Stats carries simulator statistics when the runner is
// simulator-backed.
type MeasureResult struct {
	Score   float64
	TimeSec float64
	Stats   *sim.Stats
	Err     error
	// TrueTimeSec is the noiseless modelled run time (native runners only;
	// used by ablations that vary measurement noise).
	TrueTimeSec float64
	// ElapsedSec is the wall-clock cost of the measurement including
	// cooldowns (Eq. 4 bookkeeping).
	ElapsedSec float64
	// CacheHit marks results served from a simulate-service result cache
	// rather than a fresh simulation. Eq. (4) break-even accounting must
	// treat such measurements as free: their Stats (including
	// SimWallSeconds) describe the original simulation, not work done for
	// this candidate.
	CacheHit bool
}

// Builder compiles measure inputs into runnable programs.
type Builder interface {
	Build(inputs []MeasureInput) []BuildResult
}

// Runner executes built candidates and scores them.
type Runner interface {
	// Name identifies the runner in logs.
	Name() string
	// NParallel reports how many executions may proceed concurrently
	// (1 for native hardware, n_parallel for simulators).
	NParallel() int
	// Run measures every build; inputs and builds are index-aligned.
	Run(inputs []MeasureInput, builds []BuildResult) []MeasureResult
}

// LocalBuilder lowers candidates for one target ISA.
type LocalBuilder struct {
	Arch isa.Arch
}

// Build implements Builder: it replays the schedule steps on a fresh
// workload and lowers the result. Failures land in BuildResult.Err, as TVM
// reports compile errors per candidate.
func (b LocalBuilder) Build(inputs []MeasureInput) []BuildResult {
	model := isa.Lookup(b.Arch)
	out := make([]BuildResult, len(inputs))
	for i, in := range inputs {
		wl := in.Factory()
		s, err := schedule.Replay(wl.Op, in.Steps)
		if err != nil {
			out[i] = BuildResult{Err: fmt.Errorf("runner: replay: %w", err)}
			continue
		}
		p, err := lower.Build(s, model)
		if err != nil {
			out[i] = BuildResult{Err: fmt.Errorf("runner: lower: %w", err)}
			continue
		}
		out[i] = BuildResult{Prog: p}
	}
	return out
}

// Parallel executes fn over [0,count) with at most n concurrent workers,
// preserving result order; it is the worker pool behind the simulator
// runner's n_parallel semantics and is exported for other runners.
func Parallel(n, count int, fn func(i int)) { runParallel(n, count, fn) }

// ParallelCtx is Parallel with cancellation: once ctx is done no further
// indices are dispatched and the call returns ctx.Err() after in-flight fn
// calls finish (fn must observe ctx itself to abort mid-work). It always
// drains its workers before returning, so callers never leak goroutines —
// the property the simulate service relies on to abort batches on server
// shutdown and client disconnect. A nil ctx behaves like Parallel.
func ParallelCtx(ctx context.Context, n, count int, fn func(i int)) error {
	if ctx == nil {
		runParallel(n, count, fn)
		return nil
	}
	if n < 1 {
		n = 1
	}
	if n > count {
		n = count
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	var err error
	for i := 0; i < count && err == nil; i++ {
		// Check Done with priority: when a worker is ready to receive AND
		// ctx is done, a single select would pick either at random and
		// could keep dispatching long after cancellation.
		select {
		case <-ctx.Done():
			err = ctx.Err()
			continue
		default:
		}
		select {
		case work <- i:
		case <-ctx.Done():
			err = ctx.Err()
		}
	}
	close(work)
	wg.Wait()
	return err
}

// runParallel executes fn over indices with at most n concurrent workers,
// preserving result order.
func runParallel(n, count int, fn func(i int)) {
	if n < 1 {
		n = 1
	}
	if n > count {
		n = count
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	for i := 0; i < count; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}
