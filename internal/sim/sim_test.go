package sim

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/isa"
	"repro/internal/lower"
	"repro/internal/schedule"
	"repro/internal/te"
)

func buildProg(t *testing.T, arch isa.Arch) *lower.Program {
	t.Helper()
	wl := te.MatMul(8, 8, 8)
	p, err := lower.Build(schedule.New(wl.Op), isa.Lookup(arch))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunProducesStats(t *testing.T) {
	for _, arch := range isa.Archs() {
		p := buildProg(t, arch)
		st, err := Run(p, hw.Lookup(arch).Caches)
		if err != nil {
			t.Fatal(err)
		}
		if st.Total == 0 || st.Loads == 0 || st.Stores == 0 || st.Branches == 0 {
			t.Fatalf("%s: empty stats %+v", arch, st)
		}
		if st.Arch != arch {
			t.Fatalf("arch = %s want %s", st.Arch, arch)
		}
	}
}

func TestCacheLevelNamesPerArch(t *testing.T) {
	px := buildProg(t, isa.X86)
	stx, err := Run(px, hw.Lookup(isa.X86).Caches)
	if err != nil {
		t.Fatal(err)
	}
	if len(stx.Caches) != 4 {
		t.Fatalf("x86 must expose 4 cache levels, got %d", len(stx.Caches))
	}
	if _, ok := stx.Cache("L3"); !ok {
		t.Fatal("x86 must have L3")
	}
	pr := buildProg(t, isa.RISCV)
	str, err := Run(pr, hw.Lookup(isa.RISCV).Caches)
	if err != nil {
		t.Fatal(err)
	}
	if len(str.Caches) != 3 {
		t.Fatalf("riscv must expose 3 cache levels, got %d", len(str.Caches))
	}
	if _, ok := str.Cache("L3"); ok {
		t.Fatal("riscv must not have L3")
	}
}

func TestStatsConsistency(t *testing.T) {
	p := buildProg(t, isa.ARM)
	m, err := New(isa.ARM, hw.Lookup(isa.ARM).Caches)
	if err != nil {
		t.Fatal(err)
	}
	lower.Execute(p, m, false)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	// Loads seen by the simulator must equal L1D read accesses (scalar and
	// vector loads each touch L1D once unless they span lines).
	l1d, _ := st.Cache("L1D")
	if l1d.ReadAccesses() < st.Loads {
		t.Fatalf("L1D read accesses %d < load instructions %d", l1d.ReadAccesses(), st.Loads)
	}
	if l1d.WriteAccesses() < st.Stores {
		t.Fatalf("L1D write accesses %d < store instructions %d", l1d.WriteAccesses(), st.Stores)
	}
	var sum uint64
	for _, c := range st.Instr {
		sum += c
	}
	if sum != st.Total {
		t.Fatalf("total %d != class sum %d", st.Total, sum)
	}
}

func TestInstructionFetchLineGranular(t *testing.T) {
	// Unroll the reduction so the body spans several code lines; the hot
	// loop must then produce repeated line fetches that hit in L1I.
	wl := te.MatMul(16, 32, 16)
	s := schedule.New(wl.Op)
	if err := s.Unroll(s.Leaves[2]); err != nil {
		t.Fatal(err)
	}
	p, err := lower.Build(s, isa.Lookup(isa.RISCV))
	if err != nil {
		t.Fatal(err)
	}
	if p.CodeBytes() <= 64 {
		t.Fatalf("unrolled kernel should exceed one code line, got %d B", p.CodeBytes())
	}
	m, err := New(isa.RISCV, hw.Lookup(isa.RISCV).Caches)
	if err != nil {
		t.Fatal(err)
	}
	lower.Execute(p, m, false)
	st := m.Stats()
	l1i, _ := st.Cache("L1I")
	if l1i.ReadAccesses() < 10 {
		t.Fatalf("expected repeated line fetches, got %d", l1i.ReadAccesses())
	}
	if l1i.ReadAccesses() >= st.Total {
		t.Fatalf("line-granular fetches (%d) must be below instruction count (%d)",
			l1i.ReadAccesses(), st.Total)
	}
	hitRate := float64(l1i.ReadHits()) / float64(l1i.ReadAccesses())
	if hitRate < 0.9 {
		t.Fatalf("L1I hit rate = %.3f, expected hot loop to hit", hitRate)
	}
}

func TestResetClearsMachine(t *testing.T) {
	p := buildProg(t, isa.X86)
	m, err := New(isa.X86, hw.Lookup(isa.X86).Caches)
	if err != nil {
		t.Fatal(err)
	}
	lower.Execute(p, m, false)
	m.Reset()
	st := m.Stats()
	if st.Total != 0 {
		t.Fatal("reset must clear instruction counters")
	}
	l1d, _ := st.Cache("L1D")
	if l1d.Accesses() != 0 {
		t.Fatal("reset must clear caches")
	}
}

func TestDeterministicStats(t *testing.T) {
	p := buildProg(t, isa.X86)
	a, err := Run(p, hw.Lookup(isa.X86).Caches)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, hw.Lookup(isa.X86).Caches)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != b.Total || a.Loads != b.Loads {
		t.Fatal("same program must produce identical stats")
	}
	ca, _ := a.Cache("L1D")
	cb, _ := b.Cache("L1D")
	if ca != cb {
		t.Fatalf("cache stats differ: %+v vs %+v", ca, cb)
	}
}

func TestTilingImprovesL1DHitRate(t *testing.T) {
	// A 128³ matmul (two 64 KiB operands, exceeding the 32 KiB L1D) with
	// naive i,j,k order vs the classic cache-blocked schedule: blocking
	// must raise the L1D hit rate.
	hitRate := func(blocked bool) float64 {
		wl := te.MatMul(128, 128, 128)
		s := schedule.New(wl.Op)
		if blocked {
			i, j, k := s.Leaves[0], s.Leaves[1], s.Leaves[2]
			io, ii, _ := s.Split(i, 8)
			jo, ji, _ := s.Split(j, 8)
			ko, ki, _ := s.Split(k, 8)
			if err := s.Reorder([]*schedule.IterVar{io, jo, ii, ko, ki, ji}); err != nil {
				t.Fatal(err)
			}
		}
		p, err := lower.Build(s, isa.Lookup(isa.ARM))
		if err != nil {
			t.Fatal(err)
		}
		st, err := Run(p, hw.Lookup(isa.ARM).Caches)
		if err != nil {
			t.Fatal(err)
		}
		l1d, _ := st.Cache("L1D")
		return float64(l1d.ReadHits()) / float64(l1d.ReadAccesses())
	}
	plain := hitRate(false)
	blocked := hitRate(true)
	if blocked <= plain {
		t.Fatalf("blocking should improve L1D hit rate: %.4f vs %.4f", blocked, plain)
	}
}

func TestSimWallSecondsMeasured(t *testing.T) {
	p := buildProg(t, isa.X86)
	st, err := Run(p, hw.Lookup(isa.X86).Caches)
	if err != nil {
		t.Fatal(err)
	}
	if st.SimWallSeconds <= 0 {
		t.Fatal("simulation wall time must be measured")
	}
}
