// Package sim is the instruction-accurate simulator of the reproduction —
// the analogue of gem5 in atomic mode with the SimpleCPU model (§II-C,
// §III-B of the paper). It executes no timing model: it only counts executed
// instructions by class and replays every memory access against a
// parameterizable cache hierarchy replicating the target CPU's geometry
// (Table I). Its output statistics are exactly the quantities the paper's
// score predictor consumes (§III-D):
//
//   - executed load/store/branch instruction counts and the total,
//   - per-cache read/write hits, misses and replacements vs accesses.
package sim

import (
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/lower"
)

// LevelStats pairs a cache level name with its counters.
type LevelStats struct {
	Name  string
	Stats cache.Stats
}

// Stats is the statistics record of one simulated program execution
// (the analogue of a gem5 stats file).
type Stats struct {
	Arch isa.Arch
	// Instr counts executed instructions per class.
	Instr [isa.NumClasses]uint64
	// Total is the executed instruction count.
	Total uint64
	// Loads/Stores/Branches aggregate scalar+vector memory and branch
	// instruction counts.
	Loads    uint64
	Stores   uint64
	Branches uint64
	// LoopExits counts loop-termination branches (not exposed to the
	// predictor; used by tests and diagnostics).
	LoopExits uint64
	// SinkEvents counts protocol events the machine consumed — a diagnostic
	// for the block-aggregation ratio (events per instruction).
	SinkEvents uint64
	// Caches lists per-level counters in L1D, L1I, L2[, L3] order.
	Caches []LevelStats
	// SimWallSeconds is the host wall-clock time this simulation took
	// (measured, used by the Eq. (4) analysis alongside the modelled rate).
	SimWallSeconds float64
}

// Cache returns the stats of a named level (zero value if absent).
func (s *Stats) Cache(name string) (cache.Stats, bool) {
	for _, l := range s.Caches {
		if l.Name == name {
			return l.Stats, true
		}
	}
	return cache.Stats{}, false
}

// Machine is one simulator instance. It implements lower.Sink; feed it a
// program execution and then read Stats. The paper runs many instances in
// parallel (n_parallel); Machines are single-goroutine, so create one per
// worker (or Acquire/Release pooled instances).
type Machine struct {
	model     isa.Model
	hier      *cache.Hierarchy
	instr     [isa.NumClasses]uint64
	loopExits uint64
	events    uint64
	lastLine  uint64
	haveLine  bool
}

// New builds a simulator for an ISA with the given cache geometry.
func New(arch isa.Arch, caches cache.HierarchyConfig) (*Machine, error) {
	h, err := cache.NewHierarchy(caches)
	if err != nil {
		return nil, err
	}
	return &Machine{model: isa.Lookup(arch), hier: h}, nil
}

// Consume implements lower.Sink. EvFetch and EvData events carry their cache
// accesses directly; legacy EvInstr events additionally model the
// instruction fetch at line granularity (sequential code re-uses the current
// line; crossing a line or jumping fetches anew).
func (m *Machine) Consume(events []lower.Event) {
	m.events += uint64(len(events))
	for i := range events {
		e := &events[i]
		switch e.Kind {
		case lower.EvFetch:
			m.hier.Fetch(e.PC, 1)
		case lower.EvData:
			m.hier.Data(e.Addr, uint32(e.Size), e.Class.IsStore())
		default: // EvInstr
			m.instr[e.Class]++
			line := e.PC &^ 63
			if !m.haveLine || line != m.lastLine {
				m.hier.Fetch(line, 1)
				m.lastLine = line
				m.haveLine = true
			}
			switch {
			case e.Class.IsLoad():
				m.hier.Data(e.Addr, uint32(e.Size), false)
			case e.Class.IsStore():
				m.hier.Data(e.Addr, uint32(e.Size), true)
			case e.Class == isa.Branch:
				if e.Flags&lower.FlagLoopExit != 0 {
					m.loopExits++
				}
			}
		}
	}
}

// ConsumeLoop implements lower.Sink: a uniform loop span is replayed as
// interleaved strided accesses, exactly as its per-event stream would
// arrive (instruction classes arrive through ConsumeCounts). The replay
// itself runs inside the cache package (Hierarchy.DataRun), which takes
// the bulk resident fast path when every touched line already sits in L1D.
func (m *Machine) ConsumeLoop(run *lower.LoopRun) {
	m.events++
	m.hier.DataRun(run.Count, run.Rows, run.Planes, run.Sites)
}

// ConsumeCounts implements lower.Sink: bulk per-class instruction counts of
// the block-aggregated encoding are added arithmetically.
func (m *Machine) ConsumeCounts(counts *lower.Counts) {
	for cl, n := range counts.ByClass {
		m.instr[cl] += n
	}
	m.loopExits += counts.LoopExits
}

// Stats snapshots the counters collected so far.
func (m *Machine) Stats() *Stats {
	s := &Stats{Arch: m.model.Arch, Instr: m.instr, LoopExits: m.loopExits,
		SinkEvents: m.events}
	for _, c := range m.instr {
		s.Total += c
	}
	s.Loads = m.instr[isa.Load] + m.instr[isa.VLoad]
	s.Stores = m.instr[isa.Store] + m.instr[isa.VStore]
	s.Branches = m.instr[isa.Branch]
	for _, lv := range m.hier.Levels() {
		s.Caches = append(s.Caches, LevelStats{Name: lv.Config().Name, Stats: lv.Stats})
	}
	return s
}

// CheckInvariants validates cache counter consistency.
func (m *Machine) CheckInvariants() error { return m.hier.CheckStats() }

// Reset clears instruction counters and cache contents (cold start).
func (m *Machine) Reset() {
	m.instr = [isa.NumClasses]uint64{}
	m.loopExits = 0
	m.events = 0
	m.haveLine = false
	m.hier.Reset()
}

// poolKey identifies a machine configuration for pooling.
type poolKey struct {
	arch   isa.Arch
	caches cache.HierarchyConfig
}

// pools holds per-configuration free lists of reset machines, so repeated
// candidate simulations (SimulatorRunner, dataset generation, benchmarks)
// re-use cache hierarchies instead of allocating a fresh one per run.
var pools sync.Map // poolKey -> *sync.Pool

// Acquire returns a reset simulator for the configuration, re-using a pooled
// instance when one is available. Release it after reading Stats.
func Acquire(arch isa.Arch, caches cache.HierarchyConfig) (*Machine, error) {
	key := poolKey{arch: arch, caches: caches}
	if p, ok := pools.Load(key); ok {
		if m, _ := p.(*sync.Pool).Get().(*Machine); m != nil {
			return m, nil
		}
	}
	return New(arch, caches)
}

// Release resets a machine and returns it to the configuration's pool.
func Release(m *Machine) {
	if m == nil {
		return
	}
	m.Reset()
	key := poolKey{arch: m.model.Arch, caches: m.hier.Cfg}
	p, _ := pools.LoadOrStore(key, &sync.Pool{})
	p.(*sync.Pool).Put(m)
}

// Run executes a lowered program on a pooled simulator instance and returns
// its statistics, including the measured simulation wall time.
func Run(p *lower.Program, caches cache.HierarchyConfig) (*Stats, error) {
	m, err := Acquire(p.Model.Arch, caches)
	if err != nil {
		return nil, err
	}
	defer Release(m)
	start := time.Now()
	lower.Execute(p, m, false)
	stats := m.Stats()
	stats.SimWallSeconds = time.Since(start).Seconds()
	return stats, nil
}
