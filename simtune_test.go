package simtune

import (
	"bytes"
	"math"
	"testing"
)

func trainTiny(t *testing.T, pred string) *TrainedModel {
	t.Helper()
	model, err := TrainScorePredictor(TrainOptions{
		Arch: RISCV, Scale: ScaleTiny, Predictor: pred,
		Groups: []int{0, 1, 2}, ImplsPerGroup: 24, NParallel: 2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return model
}

func TestTrainScorePredictorAndEvaluate(t *testing.T) {
	model := trainTiny(t, "XGBoost")
	if model.Pred.Name() != "XGBoost" {
		t.Fatalf("predictor = %s", model.Pred.Name())
	}
	res, err := model.Evaluate(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Etop1) || res.Rtop1 <= 0 {
		t.Fatalf("bad metrics: %+v", res)
	}
	if _, err := model.Evaluate(4); err == nil {
		t.Fatal("group 4 was not trained; Evaluate must fail")
	}
	if _, err := model.EvaluateUnseen(2); err != nil {
		t.Fatal(err)
	}
}

func TestTrainRequiresArch(t *testing.T) {
	if _, err := TrainScorePredictor(TrainOptions{}); err == nil {
		t.Fatal("missing arch must error")
	}
}

func TestTrainUnknownPredictor(t *testing.T) {
	_, err := TrainScorePredictor(TrainOptions{Arch: X86, Scale: ScaleTiny,
		Predictor: "forest", Groups: []int{0}, ImplsPerGroup: 8})
	if err == nil {
		t.Fatal("unknown predictor must error")
	}
}

func TestTuneGroupAndValidate(t *testing.T) {
	model := trainTiny(t, "LinReg")
	records, err := model.TuneGroup(TuneGroupOptions{Group: 1, Trials: 12, BatchSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 12 {
		t.Fatalf("records = %d", len(records))
	}
	top := TopK(records, 3)
	if len(top) != 3 {
		t.Fatalf("topk = %d", len(top))
	}
	best, idx, err := model.ValidateOnTarget(1, top)
	if err != nil {
		t.Fatal(err)
	}
	if best <= 0 || idx < 0 {
		t.Fatalf("validate = %v, %d", best, idx)
	}
}

func TestTuneGroupRequiresTrials(t *testing.T) {
	model := trainTiny(t, "LinReg")
	if _, err := model.TuneGroup(TuneGroupOptions{Group: 0}); err == nil {
		t.Fatal("missing trials must error")
	}
}

func TestFacadeReexports(t *testing.T) {
	if len(Archs()) != 3 {
		t.Fatal("archs")
	}
	if len(PredictorNames()) != 4 {
		t.Fatal("predictors")
	}
	prof := HardwareProfile(X86)
	if !prof.Caches.HasL3() {
		t.Fatal("x86 profile must have L3")
	}
	wl := ConvGroupWorkload(ScaleTiny, 0)
	if wl.Op.MACs() <= 0 {
		t.Fatal("workload empty")
	}
}

func TestSaveLoadPredictorFacade(t *testing.T) {
	model := trainTiny(t, "XGBoost")
	var buf bytes.Buffer
	if err := SavePredictor(model.Pred, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	probe := make([]float64, 43)
	for i := range probe {
		probe[i] = 0.1 * float64(i%7)
	}
	if model.Pred.Predict(probe) != back.Predict(probe) {
		t.Fatal("facade save/load changed predictions")
	}
}
